"""Per-packet CSI frame in the Intel 5300 layout.

The CSI tool reports, for every received packet, one complex number per
(receive antenna, subcarrier) pair — "a group of 30 CSIs" per antenna in the
paper's wording.  :class:`CSIFrame` is a thin, validated wrapper around that
matrix with the accessors the rest of the library needs (amplitude, phase,
per-subcarrier RSS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.constants import (
    INTEL5300_SUBCARRIER_INDICES,
    subcarrier_frequencies,
)
from repro.utils.convert import power_to_db


@dataclass(frozen=True)
class CSIFrame:
    """Channel State Information of a single received packet.

    Parameters
    ----------
    csi:
        Complex matrix of shape ``(num_antennas, num_subcarriers)``.
    timestamp:
        Reception time in seconds (monotonic within a trace).
    sequence_number:
        Packet counter assigned by the collector.
    subcarrier_indices:
        Subcarrier indices relative to the channel centre; defaults to the
        Intel 5300 grid and is carried along so consumers never have to guess
        the frequency axis.
    """

    csi: np.ndarray
    timestamp: float = 0.0
    sequence_number: int = 0
    subcarrier_indices: tuple[int, ...] = INTEL5300_SUBCARRIER_INDICES

    def __post_init__(self) -> None:
        csi = np.asarray(self.csi, dtype=complex)
        if csi.ndim == 1:
            csi = csi[None, :]
        if csi.ndim != 2:
            raise ValueError(
                f"csi must be 2-D (antennas x subcarriers), got shape {csi.shape}"
            )
        if csi.shape[1] != len(self.subcarrier_indices):
            raise ValueError(
                f"csi has {csi.shape[1]} subcarriers but "
                f"{len(self.subcarrier_indices)} indices were provided"
            )
        if not np.all(np.isfinite(csi)):
            raise ValueError("csi contains non-finite values")
        object.__setattr__(self, "csi", csi)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_antennas(self) -> int:
        """Number of receive antennas in the frame."""
        return self.csi.shape[0]

    @property
    def num_subcarriers(self) -> int:
        """Number of subcarriers in the frame."""
        return self.csi.shape[1]

    def amplitude(self) -> np.ndarray:
        """Linear CSI amplitude ``|H|`` of shape ``(antennas, subcarriers)``."""
        return np.abs(self.csi)

    def phase(self) -> np.ndarray:
        """Raw (wrapped) CSI phase in radians."""
        return np.angle(self.csi)

    def power(self) -> np.ndarray:
        """Per-subcarrier received power ``|H|^2``."""
        return np.abs(self.csi) ** 2

    def subcarrier_rss_db(self) -> np.ndarray:
        """Per-subcarrier RSS in dB (``10 log10 |H|^2``)."""
        return power_to_db(self.power())

    def frequencies(self) -> np.ndarray:
        """Absolute subcarrier frequencies in Hz."""
        return subcarrier_frequencies(indices=self.subcarrier_indices)

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def antenna(self, index: int) -> "CSIFrame":
        """A single-antenna view of this frame."""
        if not 0 <= index < self.num_antennas:
            raise IndexError(
                f"antenna index {index} out of range for {self.num_antennas} antennas"
            )
        return CSIFrame(
            csi=self.csi[index : index + 1],
            timestamp=self.timestamp,
            sequence_number=self.sequence_number,
            subcarrier_indices=self.subcarrier_indices,
        )

    def with_csi(self, csi: np.ndarray) -> "CSIFrame":
        """A copy of this frame carrying different CSI values."""
        return CSIFrame(
            csi=csi,
            timestamp=self.timestamp,
            sequence_number=self.sequence_number,
            subcarrier_indices=self.subcarrier_indices,
        )

    @classmethod
    def from_matrix(
        cls,
        csi: np.ndarray,
        *,
        timestamp: float = 0.0,
        sequence_number: int = 0,
    ) -> "CSIFrame":
        """Build a frame from a raw ``(antennas, 30)`` complex matrix."""
        return cls(csi=csi, timestamp=timestamp, sequence_number=sequence_number)
