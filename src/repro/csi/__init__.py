"""Measurement-plane substrate: CSI frames, traces, collection and calibration.

This subpackage mimics what the Intel 5300 CSI tool delivers to user space —
per-packet complex CSI on 30 subcarriers for each receive antenna — plus the
pre-processing every CSI-based system performs before using the data:
phase sanitisation, subcarrier RSS extraction and trace management.
"""

from repro.csi.calibration import (
    remove_common_phase,
    remove_linear_phase,
    sanitize_csi_array,
    sanitize_frame,
    sanitize_trace,
)
from repro.csi.collector import PacketCollector
from repro.csi.format import CSIFrame
from repro.csi.rssi import rss_change_db, subcarrier_rss_db
from repro.csi.trace import CSITrace

__all__ = [
    "CSIFrame",
    "CSITrace",
    "PacketCollector",
    "remove_common_phase",
    "remove_linear_phase",
    "sanitize_csi_array",
    "sanitize_frame",
    "sanitize_trace",
    "rss_change_db",
    "subcarrier_rss_db",
]
