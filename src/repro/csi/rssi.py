"""Subcarrier RSS extraction and RSS-change computation.

The paper's detection features are built on the per-subcarrier received
signal strength ``s(f_k) = 10 lg |H(f_k)|^2`` and its deviation from the
calibration profile, ``delta_s(f_k) = s(f_k) - s^{(0)}(f_k)`` (Section III).
"""

from __future__ import annotations

import numpy as np

from repro.csi.trace import CSITrace
from repro.utils.convert import power_to_db


def subcarrier_rss_db(csi: np.ndarray) -> np.ndarray:
    """Per-subcarrier RSS in dB from complex CSI of any shape."""
    return power_to_db(np.abs(np.asarray(csi)) ** 2)


def rss_change_db(csi: np.ndarray, baseline_csi: np.ndarray) -> np.ndarray:
    """RSS change (dB) of *csi* relative to a no-human baseline.

    Both inputs may be single frames ``(antennas, subcarriers)`` or batches
    ``(packets, antennas, subcarriers)``; the baseline is broadcast against
    the measurement.
    """
    measurement = subcarrier_rss_db(csi)
    baseline = subcarrier_rss_db(baseline_csi)
    return measurement - baseline


def trace_rss_change_db(trace: CSITrace, baseline: CSITrace) -> np.ndarray:
    """Per-packet RSS change of a trace against a baseline trace.

    The baseline profile is the mean amplitude of the baseline trace (the
    paper's ``s^{(0)}``); the result has shape
    ``(packets, antennas, subcarriers)``.
    """
    profile_power = baseline.mean_amplitude() ** 2
    return power_to_db(trace.power()) - power_to_db(profile_power)[None, :, :]


def mean_rss_change_db(trace: CSITrace, baseline: CSITrace) -> np.ndarray:
    """Mean (over packets) RSS change per antenna and subcarrier."""
    return trace_rss_change_db(trace, baseline).mean(axis=0)


def rss_variance_db(trace: CSITrace) -> np.ndarray:
    """Variance of the per-subcarrier RSS over packets.

    The paper notes that the RSS mean detects stationary targets while the
    variance is the usual feature for mobile targets [18]; exposing both lets
    the examples explore either mode.
    """
    return trace.subcarrier_rss_db().var(axis=0)
