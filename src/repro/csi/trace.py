"""Containers for sequences of CSI frames (traces / captures).

A :class:`CSITrace` corresponds to one measurement burst in the paper — for
example the 5000-packet captures collected at each human location, or a
walking trajectory.  It stores the frames as a single contiguous complex array
for fast vectorised processing while still exposing frame-level access.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path as FilePath
from typing import Iterator, Sequence

import numpy as np

from repro.channel.constants import INTEL5300_SUBCARRIER_INDICES
from repro.csi.format import CSIFrame
from repro.utils.convert import power_to_db


@dataclass
class CSITrace:
    """A time-ordered collection of CSI packets for a fixed link.

    Parameters
    ----------
    csi:
        Complex array of shape ``(num_packets, num_antennas, num_subcarriers)``.
    timestamps:
        Per-packet reception times in seconds; defaults to a uniform grid at
        50 packets per second (the paper's pinging rate).
    subcarrier_indices:
        Frequency grid shared by every packet.
    label:
        Free-form metadata, e.g. ``"case-3/grid-(1,2)"`` or ``"empty"``.
    """

    csi: np.ndarray
    timestamps: np.ndarray | None = None
    subcarrier_indices: tuple[int, ...] = INTEL5300_SUBCARRIER_INDICES
    label: str = ""

    def __post_init__(self) -> None:
        csi = np.asarray(self.csi, dtype=complex)
        if csi.ndim == 2:
            csi = csi[:, None, :]
        if csi.ndim != 3:
            raise ValueError(
                "csi must have shape (packets, antennas, subcarriers), "
                f"got {csi.shape}"
            )
        if csi.shape[2] != len(self.subcarrier_indices):
            raise ValueError(
                f"csi has {csi.shape[2]} subcarriers but "
                f"{len(self.subcarrier_indices)} indices were provided"
            )
        self.csi = csi
        if self.timestamps is None:
            self.timestamps = np.arange(csi.shape[0], dtype=float) / 50.0
        else:
            self.timestamps = np.asarray(self.timestamps, dtype=float)
            if self.timestamps.shape != (csi.shape[0],):
                raise ValueError(
                    f"timestamps has shape {self.timestamps.shape}, expected "
                    f"({csi.shape[0]},)"
                )

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.csi.shape[0]

    def __iter__(self) -> Iterator[CSIFrame]:
        for i in range(len(self)):
            yield self.frame(i)

    def __getitem__(self, index: int | slice) -> "CSIFrame | CSITrace":
        if isinstance(index, slice):
            return CSITrace(
                csi=self.csi[index],
                timestamps=self.timestamps[index],
                subcarrier_indices=self.subcarrier_indices,
                label=self.label,
            )
        return self.frame(index)

    def frame(self, index: int) -> CSIFrame:
        """The *index*-th packet as a :class:`CSIFrame`."""
        return CSIFrame(
            csi=self.csi[index],
            timestamp=float(self.timestamps[index]),
            sequence_number=index,
            subcarrier_indices=self.subcarrier_indices,
        )

    # ------------------------------------------------------------------ #
    # shape accessors
    # ------------------------------------------------------------------ #
    @property
    def num_packets(self) -> int:
        """Number of packets in the trace."""
        return self.csi.shape[0]

    @property
    def num_antennas(self) -> int:
        """Number of receive antennas."""
        return self.csi.shape[1]

    @property
    def num_subcarriers(self) -> int:
        """Number of subcarriers."""
        return self.csi.shape[2]

    # ------------------------------------------------------------------ #
    # vectorised views
    # ------------------------------------------------------------------ #
    def amplitude(self) -> np.ndarray:
        """Linear amplitude, shape ``(packets, antennas, subcarriers)``."""
        return np.abs(self.csi)

    def power(self) -> np.ndarray:
        """Received power ``|H|^2`` with the same shape as the trace."""
        return np.abs(self.csi) ** 2

    def subcarrier_rss_db(self) -> np.ndarray:
        """Per-packet, per-antenna, per-subcarrier RSS in dB."""
        return power_to_db(self.power())

    def mean_csi(self) -> np.ndarray:
        """Mean complex CSI over packets, shape ``(antennas, subcarriers)``."""
        return self.csi.mean(axis=0)

    def mean_amplitude(self) -> np.ndarray:
        """Mean CSI amplitude over packets (the paper's static profile s(0))."""
        return np.abs(self.csi).mean(axis=0)

    def antenna(self, index: int) -> "CSITrace":
        """Single-antenna view of the trace."""
        if not 0 <= index < self.num_antennas:
            raise IndexError(
                f"antenna index {index} out of range for {self.num_antennas} antennas"
            )
        return CSITrace(
            csi=self.csi[:, index : index + 1, :],
            timestamps=self.timestamps,
            subcarrier_indices=self.subcarrier_indices,
            label=self.label,
        )

    # ------------------------------------------------------------------ #
    # construction / combination
    # ------------------------------------------------------------------ #
    @classmethod
    def from_frames(
        cls,
        frames: Sequence[CSIFrame],
        *,
        label: str = "",
        timestamps: np.ndarray | Sequence[float] | None = None,
    ) -> "CSITrace":
        """Stack individual frames into a trace (they must agree in shape).

        Parameters
        ----------
        frames:
            Frames to stack, in packet order.
        label:
            Free-form trace label.
        timestamps:
            Optional per-packet times overriding the frames' own
            ``timestamp`` attributes (one entry per frame), so callers that
            carry an authoritative time axis — e.g. a source trace being
            transformed frame by frame — never need to mutate the built
            trace afterwards.
        """
        if not frames:
            raise ValueError("from_frames requires at least one frame")
        shapes = {frame.csi.shape for frame in frames}
        if len(shapes) != 1:
            raise ValueError(f"frames have inconsistent shapes: {shapes}")
        indices = frames[0].subcarrier_indices
        csi = np.stack([frame.csi for frame in frames])
        if timestamps is None:
            timestamps = np.asarray([frame.timestamp for frame in frames], dtype=float)
        else:
            timestamps = np.asarray(timestamps, dtype=float)
            if timestamps.shape != (len(frames),):
                raise ValueError(
                    f"timestamps has shape {timestamps.shape}, expected ({len(frames)},)"
                )
        return cls(csi=csi, timestamps=timestamps, subcarrier_indices=indices, label=label)

    @classmethod
    def concatenate(cls, traces: Sequence["CSITrace"], *, label: str = "") -> "CSITrace":
        """Concatenate several traces of the same link back to back."""
        if not traces:
            raise ValueError("concatenate requires at least one trace")
        shapes = {(t.num_antennas, t.num_subcarriers) for t in traces}
        if len(shapes) != 1:
            raise ValueError(f"traces have inconsistent shapes: {shapes}")
        csi = np.concatenate([t.csi for t in traces], axis=0)
        timestamps = np.concatenate([t.timestamps for t in traces])
        return cls(
            csi=csi,
            timestamps=timestamps,
            subcarrier_indices=traces[0].subcarrier_indices,
            label=label or traces[0].label,
        )

    def split(self, num_chunks: int) -> list["CSITrace"]:
        """Split the trace into *num_chunks* nearly equal consecutive chunks."""
        if num_chunks < 1:
            raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
        if num_chunks > self.num_packets:
            raise ValueError(
                f"cannot split {self.num_packets} packets into {num_chunks} chunks"
            )
        bounds = np.linspace(0, self.num_packets, num_chunks + 1, dtype=int)
        return [self[int(a) : int(b)] for a, b in zip(bounds[:-1], bounds[1:])]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | FilePath) -> None:
        """Persist the trace to a ``.npz`` file."""
        np.savez_compressed(
            FilePath(path),
            csi=self.csi,
            timestamps=self.timestamps,
            subcarrier_indices=np.asarray(self.subcarrier_indices),
            label=np.asarray(self.label),
        )

    @classmethod
    def load(cls, path: str | FilePath) -> "CSITrace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(FilePath(path), allow_pickle=False) as data:
            return cls(
                csi=data["csi"],
                timestamps=data["timestamps"],
                subcarrier_indices=tuple(int(i) for i in data["subcarrier_indices"]),
                label=str(data["label"]),
            )
