"""Packet collection: sampling the channel simulator like a pinging receiver.

In the paper's testbed the receiver pings the AP at 50 packets per second and
the CSI tool reports one CSI group per received packet.  The
:class:`PacketCollector` reproduces that acquisition loop on top of a
:class:`~repro.channel.channel.ChannelSimulator`, producing
:class:`~repro.csi.trace.CSITrace` objects with realistic timestamps and
optional packet loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.channel.channel import ChannelSimulator
from repro.channel.constants import DEFAULT_PACKET_RATE_HZ
from repro.channel.geometry import Point
from repro.channel.human import HumanBody
from repro.csi.trace import CSITrace
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_probability


@dataclass
class PacketCollector:
    """Collect CSI traces from a simulated link at a fixed packet rate.

    Parameters
    ----------
    simulator:
        The channel simulator standing in for the AP/NIC pair.
    packet_rate_hz:
        Ping rate; the paper uses 50 packets per second.
    loss_probability:
        Independent probability that a ping is lost (no CSI reported).  Losses
        shift subsequent timestamps exactly as they would on hardware.
    seed:
        Seed for the loss process and per-packet impairments.
    rng:
        Explicit generator for the loss process and impairments; takes
        precedence over *seed*.  Passing the same generator to several
        collectors (or other components) makes them share one stream,
        mirroring :func:`repro.utils.rng.ensure_rng` usage elsewhere.
    """

    simulator: ChannelSimulator
    packet_rate_hz: float = DEFAULT_PACKET_RATE_HZ
    loss_probability: float = 0.0
    seed: SeedLike = None
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if self.packet_rate_hz <= 0:
            raise ValueError(f"packet_rate_hz must be > 0, got {self.packet_rate_hz}")
        check_probability("loss_probability", self.loss_probability)
        if self.rng is not None and not isinstance(self.rng, np.random.Generator):
            raise TypeError(
                f"rng must be a numpy.random.Generator, got {type(self.rng).__name__}"
            )
        self._rng = self.rng if self.rng is not None else ensure_rng(self.seed)

    # ------------------------------------------------------------------ #
    # static scenes
    # ------------------------------------------------------------------ #
    def collect(
        self,
        humans: Sequence[HumanBody] | HumanBody | None = None,
        *,
        num_packets: int,
        label: str = "",
        start_time: float = 0.0,
    ) -> CSITrace:
        """Collect *num_packets* received packets for a static scene.

        Lost pings are skipped (they consume time but produce no CSI), so the
        returned trace always contains exactly *num_packets* frames, matching
        how a fixed-size capture is gathered on hardware.
        """
        if num_packets < 1:
            raise ValueError(f"num_packets must be >= 1, got {num_packets}")
        interval = 1.0 / self.packet_rate_hz
        frames = []
        timestamps = []
        t = start_time
        while len(frames) < num_packets:
            t += interval
            if self.loss_probability > 0 and self._rng.random() < self.loss_probability:
                continue
            frames.append(self.simulator.sample_packet(humans, seed=self._rng))
            timestamps.append(t)
        return CSITrace(
            csi=np.asarray(frames),
            timestamps=np.asarray(timestamps),
            label=label,
        )

    def collect_empty(self, *, num_packets: int, label: str = "empty") -> CSITrace:
        """Collect a static (no human) profile trace."""
        return self.collect(None, num_packets=num_packets, label=label)

    # ------------------------------------------------------------------ #
    # moving scenes
    # ------------------------------------------------------------------ #
    def collect_walk(
        self,
        positions: Sequence[Point],
        *,
        body: HumanBody | None = None,
        background: Sequence[HumanBody] = (),
        label: str = "walk",
        start_time: float = 0.0,
    ) -> CSITrace:
        """Collect one packet per position along a walking trajectory.

        The trajectory should already be sampled at the packet rate (use
        :func:`repro.experiments.workloads.walking_trajectory`); each packet
        sees the person at the corresponding position.
        """
        if not positions:
            raise ValueError("positions must contain at least one point")
        interval = 1.0 / self.packet_rate_hz
        csi = self.simulator.sample_trajectory(
            positions, body=body, background=background, seed=self._rng
        )
        timestamps = start_time + interval * (1 + np.arange(len(positions)))
        return CSITrace(csi=csi, timestamps=timestamps, label=label)
