"""Packet collection: sampling the channel simulator like a pinging receiver.

In the paper's testbed the receiver pings the AP at 50 packets per second and
the CSI tool reports one CSI group per received packet.  The
:class:`PacketCollector` reproduces that acquisition loop on top of a
:class:`~repro.channel.channel.ChannelSimulator`, producing
:class:`~repro.csi.trace.CSITrace` objects with realistic timestamps and
optional packet loss.

Within one monitoring window the scene is static, so the clean CFR is
computed once per :meth:`PacketCollector.collect` call and only the
per-packet impairments (and loss draws) run in the acquisition loop.  The
draws consume the collector's RNG stream in exactly the same order as the
historical per-packet path (loss draw, then impairment draws, per ping), so
collected traces are bit-identical to the uncached implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.channel.channel import ChannelSimulator
from repro.channel.constants import DEFAULT_PACKET_RATE_HZ
from repro.channel.geometry import Point
from repro.channel.human import HumanBody
from repro.csi.trace import CSITrace
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_probability

#: Consecutive lost pings after which collection aborts.  With the validated
#: ``loss_probability < 1`` this is astronomically unlikely to trigger for any
#: sane configuration (p = 0.999 reaches it with probability ~1e-44); it
#: exists to turn a mis-modelled loss process into a clear error instead of a
#: silent near-infinite loop.
MAX_CONSECUTIVE_LOSSES = 100_000


@dataclass
class PacketCollector:
    """Collect CSI traces from a simulated link at a fixed packet rate.

    Parameters
    ----------
    simulator:
        The channel simulator standing in for the AP/NIC pair.
    packet_rate_hz:
        Ping rate; the paper uses 50 packets per second.
    loss_probability:
        Independent probability that a ping is lost (no CSI reported).  Losses
        shift subsequent timestamps exactly as they would on hardware.  Must
        be strictly below 1: with certain loss no capture can ever complete.
    seed:
        Seed for the loss process and per-packet impairments.
    rng:
        Explicit generator for the loss process and impairments; takes
        precedence over *seed*.  Passing the same generator to several
        collectors (or other components) makes them share one stream,
        mirroring :func:`repro.utils.rng.ensure_rng` usage elsewhere.
    """

    simulator: ChannelSimulator
    packet_rate_hz: float = DEFAULT_PACKET_RATE_HZ
    loss_probability: float = 0.0
    seed: SeedLike = None
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if self.packet_rate_hz <= 0:
            raise ValueError(f"packet_rate_hz must be > 0, got {self.packet_rate_hz}")
        check_probability(
            "loss_probability",
            self.loss_probability,
            exclusive_upper=True,
            reason="with certain loss a fixed-size capture never completes",
        )
        if self.rng is not None and not isinstance(self.rng, np.random.Generator):
            raise TypeError(
                f"rng must be a numpy.random.Generator, got {type(self.rng).__name__}"
            )
        self._rng = self.rng if self.rng is not None else ensure_rng(self.seed)

    # ------------------------------------------------------------------ #
    # loss process
    # ------------------------------------------------------------------ #
    def _ping_lost(self, consecutive_losses: int) -> bool:
        """One loss draw; raise if the loss streak exceeds the retry cap."""
        if self.loss_probability <= 0:
            return False
        if self._rng.random() >= self.loss_probability:
            return False
        if consecutive_losses + 1 >= MAX_CONSECUTIVE_LOSSES:
            raise RuntimeError(
                f"aborting capture: {MAX_CONSECUTIVE_LOSSES} consecutive pings "
                f"lost at loss_probability={self.loss_probability}; the loss "
                "process never delivers packets"
            )
        return True

    # ------------------------------------------------------------------ #
    # static scenes
    # ------------------------------------------------------------------ #
    def collect(
        self,
        humans: Sequence[HumanBody] | HumanBody | None = None,
        *,
        num_packets: int,
        label: str = "",
        start_time: float = 0.0,
    ) -> CSITrace:
        """Collect *num_packets* received packets for a static scene.

        Lost pings are skipped (they consume time but produce no CSI), so the
        returned trace always contains exactly *num_packets* frames, matching
        how a fixed-size capture is gathered on hardware.

        The scene is static within the capture, so the clean CFR is
        synthesized once; the acquisition loop only *draws* the per-packet
        randomness (loss draw, then impairment draws, per ping — exactly the
        historical RNG consumption order, via
        :meth:`~repro.channel.noise.ImpairmentModel.draw_plan`) and the
        impairment arithmetic runs once for the whole window, array at a
        time.  Traces are bit-identical to sampling every packet from
        scratch at a fraction of the cost.
        """
        if num_packets < 1:
            raise ValueError(f"num_packets must be >= 1, got {num_packets}")
        interval = 1.0 / self.packet_rate_hz
        with obs.span("collect.synthesize"):
            clean = self.simulator.clean_cfr(humans)
            plan = self.simulator.impairment_plan(clean, num_packets=num_packets)
        timestamps = np.empty(num_packets, dtype=float)
        t = start_time
        consecutive_losses = 0
        with obs.span("collect.impair"):
            while plan.num_drawn < num_packets:
                t += interval
                if self._ping_lost(consecutive_losses):
                    consecutive_losses += 1
                    continue
                consecutive_losses = 0
                timestamps[plan.num_drawn] = t
                plan.draw_next(self._rng)
            csi = plan.apply()
        obs.count("collect.packets", num_packets)
        return CSITrace(
            csi=csi,
            timestamps=timestamps,
            label=label,
        )

    def collect_batch(
        self,
        cleans: np.ndarray,
        counts: Sequence[int],
        *,
        labels: Sequence[str] | None = None,
        start_time: float = 0.0,
    ) -> list[CSITrace]:
        """Collect several static-scene windows through one impairment plan.

        Byte-identical to calling :meth:`collect` once per window with the
        corresponding clean CFR: the windows share a single
        :class:`~repro.channel.noise.ImpairmentDrawPlan` (candidate ``w`` =
        window ``w``) and the acquisition loop walks the windows in order,
        making exactly the sequential path's generator calls — loss draw,
        then impairment draws, per ping, with the loss streak and the time
        axis restarting at every window boundary just as separate
        :meth:`collect` calls would.  The impairment arithmetic then runs
        once for all windows in one vectorised ``plan.apply()``.

        Parameters
        ----------
        cleans:
            Clean CFRs, shape ``(windows, antennas, subcarriers)`` — one
            static scene per requested window (entries may repeat).
        counts:
            Received packets per window, one entry per clean; all >= 1.
        labels:
            Optional per-window trace labels (default ``""``).
        start_time:
            Time origin of every window (matching ``collect``'s default of
            ``0.0`` per call).
        """
        cleans = np.asarray(cleans, dtype=complex)
        if cleans.ndim != 3:
            raise ValueError(
                f"cleans must have shape (windows, antennas, subcarriers), "
                f"got {cleans.shape}"
            )
        counts = [int(count) for count in counts]
        if len(counts) != cleans.shape[0]:
            raise ValueError(
                f"got {len(counts)} packet counts for {cleans.shape[0]} windows"
            )
        if any(count < 1 for count in counts):
            raise ValueError(f"every window needs >= 1 packets, got {counts}")
        if labels is not None and len(labels) != len(counts):
            raise ValueError(
                f"got {len(labels)} labels for {len(counts)} windows"
            )
        interval = 1.0 / self.packet_rate_hz
        total = sum(counts)
        with obs.span("collect.synthesize"):
            plan = self.simulator.impairment_plan(cleans, num_packets=total)
        timestamps = np.empty(total, dtype=float)
        with obs.span("collect.impair"):
            for window, count in enumerate(counts):
                drawn = 0
                t = start_time
                consecutive_losses = 0
                while drawn < count:
                    t += interval
                    if self._ping_lost(consecutive_losses):
                        consecutive_losses += 1
                        continue
                    consecutive_losses = 0
                    timestamps[plan.num_drawn] = t
                    plan.draw_next(self._rng, candidate=window)
                    drawn += 1
            csi = plan.apply()
        obs.count("collect.packets", total)
        traces: list[CSITrace] = []
        offset = 0
        for window, count in enumerate(counts):
            traces.append(
                CSITrace(
                    csi=csi[offset : offset + count],
                    timestamps=timestamps[offset : offset + count],
                    label=labels[window] if labels is not None else "",
                )
            )
            offset += count
        return traces

    def collect_empty(self, *, num_packets: int, label: str = "empty") -> CSITrace:
        """Collect a static (no human) profile trace."""
        return self.collect(None, num_packets=num_packets, label=label)

    # ------------------------------------------------------------------ #
    # moving scenes
    # ------------------------------------------------------------------ #
    def collect_walk(
        self,
        positions: Sequence[Point],
        *,
        body: HumanBody | None = None,
        background: Sequence[HumanBody] = (),
        label: str = "walk",
        start_time: float = 0.0,
    ) -> CSITrace:
        """Collect packets for a person walking along a trajectory.

        The trajectory should already be sampled at the packet rate (use
        :func:`repro.experiments.workloads.walking_trajectory`); each ping
        sees the person at the corresponding position.

        The loss process is the same as :meth:`collect`: a lost ping consumes
        its trajectory position (the person keeps walking) and shifts
        subsequent timestamps, but produces no CSI.  With loss enabled the
        returned trace therefore holds *fewer* packets than positions — the
        walk is bounded in time, unlike a fixed-size static capture.  With
        ``loss_probability=0`` there is exactly one packet per position.

        All per-position clean CFRs are synthesised up front in one
        :meth:`~repro.channel.channel.ChannelSimulator.clean_cfr_batch` pass
        (the background bodies are shared across scenes), and the per-packet
        impairments are batched the same way as :meth:`collect`: the loop
        only draws randomness (loss draw, then impairment draws, per ping —
        the exact historical order) and the arithmetic runs once for all
        received packets.  The trace is bit-identical to the per-position
        loop — a lost ping's pre-computed CFR is simply discarded, just as
        the loop never computed it.
        """
        if not positions:
            raise ValueError("positions must contain at least one point")
        interval = 1.0 / self.packet_rate_hz
        template = (
            body if body is not None else HumanBody(position=self.simulator.link.midpoint())
        )
        background = list(background)
        with obs.span("collect.synthesize"):
            scenes = [
                [template.moved_to(position), *background] for position in positions
            ]
            cleans = self.simulator.clean_cfr_batch(scenes)
            plan = self.simulator.impairment_plan(cleans)
        timestamps = []
        t = start_time
        with obs.span("collect.impair"):
            for i in range(len(scenes)):
                t += interval
                if self._ping_lost(0):
                    continue
                plan.draw_next(self._rng, candidate=i)
                timestamps.append(t)
            if plan.num_drawn == 0:
                raise RuntimeError(
                    f"every ping of the {len(positions)}-position walk was lost "
                    f"(loss_probability={self.loss_probability}); no CSI collected"
                )
            csi = plan.apply()
        obs.count("collect.packets", plan.num_drawn)
        return CSITrace(csi=csi, timestamps=np.asarray(timestamps), label=label)
