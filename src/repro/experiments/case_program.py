"""Whole-case array program: plan every window of a case before synthesis.

The historical :func:`~repro.experiments.runner.run_case` interleaved scene
construction, CFR synthesis and impairment sampling window by window — 275
single-scene :meth:`~repro.channel.channel.ChannelSimulator.clean_cfr_batch`
calls per case at the default configuration.  The case program splits the
campaign into a *plan* and an *execute* phase:

* :func:`plan_case` walks the case's window schedule (calibration, positive
  grid windows, interleaved empties) drawing the background, clutter and
  drift randomness in exactly the historical per-window order, and records
  one :class:`PlannedWindow` per capture — scene, packet count, label and
  drift gain.
* The executor (``run_case``) then synthesises every scene in one
  ``clean_cfr_batch`` call, samples every packet through one shared
  impairment plan (:meth:`~repro.csi.collector.PacketCollector.collect_batch`)
  and scores every window through one shared sanitisation pass.

The split is safe because the case's random streams are independent
generators: the planner only consumes the background and drift streams (in
their historical per-window order) and the executor only consumes the
collector stream, so regrouping the work across windows changes no draw.
Clean CFR synthesis consumes no randomness at all.  Drift gains are applied
to the raw traces *before* sanitisation, exactly as the historical path
does — sanitisation is not bit-wise scale-invariant, so the order matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.channel.human import HumanBody
from repro.experiments.scenarios import (
    grid_angle_to_receiver_deg,
    grid_distance_to_receiver,
    human_grid,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.channel.channel import Link
    from repro.experiments.runner import EvaluationConfig
    from repro.experiments.workloads import BackgroundDynamics, EnvironmentDrift


@dataclass(frozen=True)
class PlannedWindow:
    """One capture of a case schedule, fully determined before synthesis.

    Attributes
    ----------
    scene:
        The static bodies the channel sees during this window (the monitored
        person, background people, clutter).
    num_packets:
        Received packets to collect.
    label:
        Trace label (``<case>/calibration``, ``<case>/occupied``,
        ``<case>/empty``).
    occupied:
        Whether the monitored person is present (calibration counts as not
        occupied).
    gain:
        Per-window drift gain to apply to the collected trace, or ``None``
        for the calibration window (drift accumulates only *after*
        calibration).
    distance_to_rx_m, angle_deg, location_index:
        Grid-position metadata of positive windows (``None`` elsewhere).
    """

    scene: tuple[HumanBody, ...]
    num_packets: int
    label: str
    occupied: bool
    gain: float | None = None
    distance_to_rx_m: float | None = None
    angle_deg: float | None = None
    location_index: int | None = None


@dataclass(frozen=True)
class CasePlan:
    """The full window schedule of one link case, in capture order.

    ``windows[0]`` is always the calibration capture; everything after it is
    a monitoring window.  The accessors below are shaped for
    :meth:`~repro.csi.collector.PacketCollector.collect_batch`.
    """

    windows: tuple[PlannedWindow, ...]

    def __post_init__(self) -> None:
        if not self.windows:
            raise ValueError("a case plan needs at least the calibration window")

    @property
    def calibration(self) -> PlannedWindow:
        """The calibration capture (always the first window)."""
        return self.windows[0]

    @property
    def monitoring(self) -> tuple[PlannedWindow, ...]:
        """The monitoring windows, in scoring order."""
        return self.windows[1:]

    def scenes(self) -> list[list[HumanBody]]:
        """Per-window scenes, ready for ``clean_cfr_batch``."""
        return [list(window.scene) for window in self.windows]

    def counts(self) -> list[int]:
        """Per-window packet counts, aligned with :meth:`scenes`."""
        return [window.num_packets for window in self.windows]

    def labels(self) -> list[str]:
        """Per-window trace labels, aligned with :meth:`scenes`."""
        return [window.label for window in self.windows]


def plan_case(
    link: "Link",
    config: "EvaluationConfig",
    background: "BackgroundDynamics",
    drift: "EnvironmentDrift",
) -> CasePlan:
    """Enumerate every window of a case, drawing ambience in historical order.

    Consumes the *background* and *drift* random streams exactly as the
    window-by-window campaign loop did: per window, a background draw
    (:meth:`~repro.experiments.workloads.BackgroundDynamics.people_for_window`)
    then a clutter draw, and — for monitoring windows — a gain draw
    immediately after, so a planned campaign replays the same ambient
    conditions bit for bit.  The collector stream is untouched; it is
    consumed later by the batched acquisition loop in the same per-packet
    order as the historical one.
    """
    windows: list[PlannedWindow] = [
        PlannedWindow(
            scene=tuple(background.people_for_window() + drift.clutter_for_window()),
            num_packets=config.calibration_packets,
            label=f"{link.name}/calibration",
            occupied=False,
        )
    ]

    grid = human_grid(
        link,
        rows=config.grid_rows,
        cols=config.grid_cols,
        lateral_extent_m=config.grid_lateral_extent_m,
        along_extent_m=config.grid_along_fraction * link.distance(),
    )

    # Positive windows: every grid location, several bursts each.
    for location_index, position in enumerate(grid):
        distance = grid_distance_to_receiver(link, position)
        angle = grid_angle_to_receiver_deg(link, position)
        for _ in range(config.windows_per_location):
            scene = [config.human_at(position)]
            scene += background.people_for_window()
            scene += drift.clutter_for_window()
            windows.append(
                PlannedWindow(
                    scene=tuple(scene),
                    num_packets=config.window_packets,
                    label=f"{link.name}/occupied",
                    occupied=True,
                    gain=drift.gain_for_window(),
                    distance_to_rx_m=distance,
                    angle_deg=angle,
                    location_index=location_index,
                )
            )

    # Negative windows: the same number, same ambient conditions, nobody in
    # the monitored area.
    num_negative = len(grid) * config.windows_per_location
    for _ in range(num_negative):
        scene = background.people_for_window() + drift.clutter_for_window()
        windows.append(
            PlannedWindow(
                scene=tuple(scene),
                num_packets=config.window_packets,
                label=f"{link.name}/empty",
                occupied=False,
                gain=drift.gain_for_window(),
            )
        )

    return CasePlan(windows=tuple(windows))
