"""Detection metrics: TP/FP rates, balanced accuracy and grouped break-downs.

The paper reports True Positive (fraction of human-present windows detected)
and False Positive (fraction of empty windows flagged), the balanced accuracy
derived from the ROC, and break-downs by case (Fig. 8), by distance to the
receiver (Fig. 9), by angle (Fig. 11) and by monitoring window size
(Fig. 12).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Sequence

import numpy as np


def detection_rate(scores: Sequence[float], threshold: float) -> float:
    """Fraction of windows whose score exceeds *threshold* (TP on positives)."""
    scores = np.asarray(list(scores), dtype=float)
    if scores.size == 0:
        raise ValueError("detection_rate requires at least one score")
    return float((scores > threshold).mean())


def false_positive_rate(scores: Sequence[float], threshold: float) -> float:
    """Fraction of empty windows whose score exceeds *threshold*."""
    return detection_rate(scores, threshold)


def balanced_accuracy(
    positive_scores: Sequence[float],
    negative_scores: Sequence[float],
    threshold: float,
) -> float:
    """Balanced accuracy ``(TPR + TNR) / 2`` at a fixed threshold."""
    tpr = detection_rate(positive_scores, threshold)
    fpr = false_positive_rate(negative_scores, threshold)
    return (tpr + (1.0 - fpr)) / 2.0


def rates_by_group(
    scores: Sequence[float],
    groups: Sequence[Hashable],
    threshold: float,
) -> dict[Hashable, float]:
    """Detection rate per group label (case, distance bin, angle bin, …).

    Parameters
    ----------
    scores:
        Detection scores of positive windows.
    groups:
        A group label per score (same length).
    threshold:
        Decision threshold.
    """
    scores = list(scores)
    groups = list(groups)
    if len(scores) != len(groups):
        raise ValueError(
            f"scores ({len(scores)}) and groups ({len(groups)}) must have equal length"
        )
    if not scores:
        raise ValueError("rates_by_group requires at least one score")
    buckets: dict[Hashable, list[float]] = defaultdict(list)
    for score, group in zip(scores, groups):
        buckets[group].append(float(score))
    return {
        group: detection_rate(values, threshold) for group, values in sorted(buckets.items(), key=lambda kv: str(kv[0]))
    }


def bin_labels(values: Sequence[float], edges: Sequence[float]) -> list[str]:
    """Assign each value a human-readable bin label like ``"1-2m"``.

    Values below the first edge join the first bin; values above the last
    edge join the last bin.
    """
    edges = list(edges)
    if len(edges) < 2:
        raise ValueError("at least two bin edges are required")
    labels: list[str] = []
    for value in values:
        placed = False
        for lo, hi in zip(edges[:-1], edges[1:]):
            if value < hi or hi == edges[-1]:
                labels.append(f"{lo:g}-{hi:g}")
                placed = True
                break
        if not placed:
            labels.append(f"{edges[-2]:g}-{edges[-1]:g}")
    return labels


def range_gain(
    rates_by_distance_baseline: dict[str, float],
    rates_by_distance_scheme: dict[str, float],
    *,
    minimum_rate: float = 0.9,
    bin_centres: dict[str, float] | None = None,
) -> float:
    """Detection-range gain of a scheme over the baseline (Fig. 9's headline).

    The detection range of a scheme is the largest distance up to which the
    detection rate is *sustained* at or above *minimum_rate*: bins are walked
    in order of increasing distance and the range ends at the first bin that
    falls below the minimum (a far bin that happens to recover does not
    extend continuous coverage).  The gain is
    ``range(scheme) / range(baseline) - 1`` — the paper reports "almost 1x
    gain" meaning the range roughly doubles.

    Parameters
    ----------
    rates_by_distance_baseline, rates_by_distance_scheme:
        Mapping from distance-bin label to detection rate.
    minimum_rate:
        The minimum acceptable detection rate (90 % in the paper).
    bin_centres:
        Optional mapping from bin label to its representative distance; when
        omitted the upper edge parsed from labels like ``"3-4"`` is used.
    """

    def bin_distance(label: str) -> float:
        if bin_centres is not None and label in bin_centres:
            return bin_centres[label]
        try:
            return float(str(label).split("-")[-1].rstrip("m"))
        except ValueError as exc:
            raise ValueError(f"cannot parse distance from bin label {label!r}") from exc

    def reach(rates: dict[str, float]) -> float:
        ordered = sorted(rates.items(), key=lambda item: bin_distance(item[0]))
        covered = 0.0
        for label, rate in ordered:
            if rate < minimum_rate:
                break
            covered = bin_distance(label)
        return covered

    baseline_reach = reach(rates_by_distance_baseline)
    scheme_reach = reach(rates_by_distance_scheme)
    if baseline_reach <= 0:
        return float("inf") if scheme_reach > 0 else 0.0
    return scheme_reach / baseline_reach - 1.0
