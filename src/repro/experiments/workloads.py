"""Workload generators: human placements, trajectories and ambient dynamics.

These generators reproduce the data-collection protocol of the paper:

* 500 static human presence locations on and around the LOS path of the
  classroom link (Section III-A, Fig. 2a / Fig. 3).
* A person walking across the link, one packet per position (Fig. 2b).
* Up to 5 "students" working at desks at least 5 m from the link and
  occasionally walking around (Section V-A, the background dynamics that the
  weighting schemes are noted to magnify).
* Temporal dynamics between capture sessions — the paper pauses 5 minutes
  between bursts and repeats measurements at night and after two weeks.  We
  model that as slow per-window gain drift plus a low-amplitude "clutter"
  scatterer (a moved chair / opened door) that changes position between
  monitoring windows but is static within a window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.channel import Link
from repro.channel.geometry import Point, Segment
from repro.channel.human import HumanBody
from repro.csi.trace import CSITrace
from repro.utils.rng import SeedLike, ensure_rng


# --------------------------------------------------------------------------- #
# static location sets (Fig. 2a, Fig. 3)
# --------------------------------------------------------------------------- #
def static_location_set(
    link: Link,
    *,
    count: int = 500,
    max_lateral_m: float = 1.5,
    seed: SeedLike = None,
) -> list[Point]:
    """Sample static human presence locations along and near the LOS path.

    Half of the locations are drawn within one body-width of the LOS segment
    (on-path shadowing), the other half within *max_lateral_m* of it
    (near-path reflection), mirroring the paper's "both along the LOS path
    and in the vicinity of the LOS path" protocol.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = ensure_rng(seed)
    direction = (link.rx - link.tx).normalized()
    normal = Point(-direction.y, direction.x)
    length = link.distance()
    room = link.room
    locations: list[Point] = []
    while len(locations) < count:
        along = rng.uniform(0.1, 0.9) * length
        if rng.random() < 0.5:
            lateral = rng.uniform(-0.3, 0.3)
        else:
            lateral = rng.uniform(-max_lateral_m, max_lateral_m)
        point = link.tx + direction * along + normal * lateral
        if room.contains(point, margin=0.2):
            locations.append(point)
    return locations


def walking_trajectory(
    link: Link,
    *,
    num_packets: int = 1000,
    crossing_extent_m: float = 2.5,
    crossing_fraction: float = 0.5,
    seed: SeedLike = None,
    jitter_m: float = 0.02,
) -> list[Point]:
    """A person walking across the link, sampled at the packet rate (Fig. 2b).

    The trajectory crosses the LOS perpendicularly at *crossing_fraction* of
    the link length, spanning ``±crossing_extent_m`` around the LOS, with a
    small per-step jitter so consecutive packets are not perfectly smooth.
    """
    if num_packets < 2:
        raise ValueError(f"num_packets must be >= 2, got {num_packets}")
    rng = ensure_rng(seed)
    direction = (link.rx - link.tx).normalized()
    normal = Point(-direction.y, direction.x)
    crossing_point = link.tx + direction * (crossing_fraction * link.distance())
    offsets = np.linspace(-crossing_extent_m, crossing_extent_m, num_packets)
    room = link.room
    positions: list[Point] = []
    for offset in offsets:
        jitter = Point(rng.normal(0.0, jitter_m), rng.normal(0.0, jitter_m))
        point = crossing_point + normal * float(offset) + jitter
        x = min(max(point.x, 0.2), room.width - 0.2)
        y = min(max(point.y, 0.2), room.height - 0.2)
        positions.append(Point(x, y))
    return positions


# --------------------------------------------------------------------------- #
# background dynamics (the "students at their desks")
# --------------------------------------------------------------------------- #
@dataclass
class BackgroundDynamics:
    """Ambient people far from the link, as allowed in the paper's protocol.

    Up to *max_people* people are placed at least *min_distance_m* from the
    link segment; between monitoring windows each of them takes a small step
    (they "occasionally walk around"), so the background contribution changes
    slowly over the campaign without ever approaching the monitored link.

    Parameters
    ----------
    link:
        The monitored link the background must stay away from.
    max_people:
        Maximum number of background people (the paper allows up to 5).
    min_distance_m:
        Minimum distance from the link segment (5 m in the paper; in smaller
        simulated rooms the constraint is relaxed to whatever is feasible,
        bounded below by 2.5 m).
    step_std_m:
        Standard deviation of the small per-window fidgeting step taken while
        a person keeps working at their desk.
    walk_probability:
        Probability per window that a person gets up and takes a larger step
        (the paper's "occasionally walk around"); these occasional walks are
        precisely the background dynamics the paper notes can be magnified by
        the weighting schemes, producing the plateau of its ROC curves.
    walk_step_m:
        Standard deviation of the occasional-walk step.
    presence_probability:
        Probability that the background people are visible to the link in a
        given window (1.0 keeps them continuously present, which matches the
        paper's protocol of students working at their desks).
    seed:
        Random source.
    """

    link: Link
    max_people: int = 3
    min_distance_m: float = 5.0
    step_std_m: float = 0.08
    walk_probability: float = 0.15
    walk_step_m: float = 0.5
    presence_probability: float = 1.0
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.max_people < 0:
            raise ValueError(f"max_people must be >= 0, got {self.max_people}")
        self._rng = ensure_rng(self.seed)
        self._effective_min_distance = self._feasible_min_distance()
        self._people: list[Point] = self._initial_positions()

    # -------------------------------------------------------------- #
    def _link_segment(self) -> Segment:
        return Segment(self.link.tx, self.link.rx)

    def _feasible_min_distance(self) -> float:
        """Shrink the exclusion distance until positions exist in the room."""
        room = self.link.room
        segment = self._link_segment()
        candidate = self.min_distance_m
        corners = [
            Point(0.3, 0.3),
            Point(room.width - 0.3, 0.3),
            Point(room.width - 0.3, room.height - 0.3),
            Point(0.3, room.height - 0.3),
        ]
        max_corner_distance = max(segment.distance_to_point(c) for c in corners)
        return max(2.5, min(candidate, max_corner_distance - 0.2))

    def _sample_far_position(self) -> Point:
        room = self.link.room
        segment = self._link_segment()
        for _ in range(200):
            point = Point(
                self._rng.uniform(0.3, room.width - 0.3),
                self._rng.uniform(0.3, room.height - 0.3),
            )
            if segment.distance_to_point(point) >= self._effective_min_distance:
                return point
        # The room offers no position that far away; fall back to the corner
        # farthest from the link.
        corners = [
            Point(0.3, 0.3),
            Point(room.width - 0.3, 0.3),
            Point(room.width - 0.3, room.height - 0.3),
            Point(0.3, room.height - 0.3),
        ]
        return max(corners, key=segment.distance_to_point)

    def _initial_positions(self) -> list[Point]:
        if self.max_people == 0:
            return []
        count = int(self._rng.integers(1, self.max_people + 1))
        return [self._sample_far_position() for _ in range(count)]

    # -------------------------------------------------------------- #
    def advance(self) -> None:
        """Move every background person by one step (fidget or occasional walk)."""
        segment = self._link_segment()
        room = self.link.room
        moved: list[Point] = []
        for person in self._people:
            step_std = (
                self.walk_step_m
                if self._rng.random() < self.walk_probability
                else self.step_std_m
            )
            step = Point(
                self._rng.normal(0.0, step_std),
                self._rng.normal(0.0, step_std),
            )
            candidate = person + step
            x = min(max(candidate.x, 0.3), room.width - 0.3)
            y = min(max(candidate.y, 0.3), room.height - 0.3)
            candidate = Point(x, y)
            if segment.distance_to_point(candidate) < self._effective_min_distance:
                candidate = person
            moved.append(candidate)
        self._people = moved

    def people_for_window(self) -> list[HumanBody]:
        """Background bodies for the next monitoring window (then advance)."""
        self.advance()
        if self._rng.random() > self.presence_probability:
            return []
        bodies = [
            HumanBody(
                position=position,
                radius=0.25,
                min_attenuation=0.9,
                reflection_coefficient=0.1,
            )
            for position in self._people
        ]
        return bodies


# --------------------------------------------------------------------------- #
# environment drift between capture sessions
# --------------------------------------------------------------------------- #
@dataclass
class EnvironmentDrift:
    """Slow environmental changes between monitoring windows.

    Two effects are modelled, both constant within a window and re-drawn
    between windows:

    * a received-gain drift (dB) from AGC state, temperature and the 5-minute
      pauses / day-night / two-week repetitions of the measurement protocol;
    * a weak "clutter" scatterer (moved chair, opened door) whose position
      jitters around an anchor point near the room periphery.

    Parameters
    ----------
    link:
        The monitored link (used to keep the clutter away from the LOS).
    gain_drift_std_db:
        Standard deviation of the per-window gain drift.
    clutter_reflection:
        Amplitude reflection coefficient of the clutter scatterer; 0 disables
        it.
    clutter_jitter_m:
        Standard deviation of the clutter position jitter between windows.
    seed:
        Random source.
    """

    link: Link
    gain_drift_std_db: float = 1.0
    clutter_reflection: float = 0.05
    clutter_jitter_m: float = 0.1
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.gain_drift_std_db < 0:
            raise ValueError(
                f"gain_drift_std_db must be >= 0, got {self.gain_drift_std_db}"
            )
        self._rng = ensure_rng(self.seed)
        self._clutter_anchor = self._pick_anchor()

    def _pick_anchor(self) -> Point:
        room = self.link.room
        segment = Segment(self.link.tx, self.link.rx)
        candidates = [
            Point(0.5, 0.5),
            Point(room.width - 0.5, 0.5),
            Point(room.width - 0.5, room.height - 0.5),
            Point(0.5, room.height - 0.5),
        ]
        return max(candidates, key=segment.distance_to_point)

    def clutter_for_window(self) -> list[HumanBody]:
        """The clutter scatterer for the next window (possibly empty)."""
        if self.clutter_reflection <= 0:
            return []
        room = self.link.room
        jitter = Point(
            self._rng.normal(0.0, self.clutter_jitter_m),
            self._rng.normal(0.0, self.clutter_jitter_m),
        )
        position = self._clutter_anchor + jitter
        x = min(max(position.x, 0.3), room.width - 0.3)
        y = min(max(position.y, 0.3), room.height - 0.3)
        return [
            HumanBody(
                position=Point(x, y),
                radius=0.15,
                min_attenuation=0.95,
                reflection_coefficient=self.clutter_reflection,
            )
        ]

    def gain_for_window(self) -> float:
        """Linear amplitude gain applied to every packet of the next window."""
        drift_db = self._rng.normal(0.0, self.gain_drift_std_db)
        return float(10.0 ** (drift_db / 20.0))

    def apply_to_trace(self, trace: CSITrace, gain: float) -> CSITrace:
        """Return a copy of *trace* scaled by the per-window *gain*."""
        return CSITrace(
            csi=trace.csi * gain,
            timestamps=trace.timestamps.copy(),
            subcarrier_indices=trace.subcarrier_indices,
            label=trace.label,
        )
