"""Evaluation harness: scenarios, workloads, metrics and experiment drivers.

This subpackage reproduces the paper's measurement campaigns (Section III and
Section V) on top of the channel-simulator substrate.  Each figure of the
paper has a generator in :mod:`repro.experiments.figures` returning the
plotted data series; the benchmarks under ``benchmarks/`` call those
generators and print the resulting rows.
"""

from repro.experiments.metrics import (
    balanced_accuracy,
    detection_rate,
    false_positive_rate,
    rates_by_group,
)
from repro.experiments.runner import (
    EvaluationConfig,
    EvaluationResult,
    ScoredWindow,
    run_case,
    run_evaluation,
)
from repro.experiments.scenarios import (
    Scenario,
    classroom_scenario,
    corner_link_scenario,
    human_grid,
    office_scenarios,
)
from repro.experiments.workloads import (
    BackgroundDynamics,
    EnvironmentDrift,
    static_location_set,
    walking_trajectory,
)

__all__ = [
    "balanced_accuracy",
    "detection_rate",
    "false_positive_rate",
    "rates_by_group",
    "EvaluationConfig",
    "EvaluationResult",
    "ScoredWindow",
    "run_case",
    "run_evaluation",
    "Scenario",
    "classroom_scenario",
    "corner_link_scenario",
    "human_grid",
    "office_scenarios",
    "BackgroundDynamics",
    "EnvironmentDrift",
    "static_location_set",
    "walking_trajectory",
]
