"""Testing scenarios matching the paper's measurement environments.

Three environments appear in the paper:

* A **6 m x 8 m classroom** used for the link-characterization measurements
  of Section III (Fig. 2–4): a 4 m TX-RX link with 500 static human
  locations on and around the LOS path.
* A **3 m link next to a concrete wall** used for the angle-of-arrival study
  of Section IV-B (Fig. 5): the wall creates a pronounced reflected path the
  array must separate from the LOS.
* **Two office rooms in an academic building** with desks and furniture,
  hosting the 5 TX-RX links ("cases") of the evaluation (Fig. 6–12), each
  with a 3x3 grid of human presence locations.

The rooms are parametric: wall materials and interior obstacles set the
multipath density, and every scenario records the grid of human positions so
the runner and figures sample the same locations the paper does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.channel.channel import Link
from repro.channel.geometry import Point, Room, Segment
from repro.channel.human import HumanBody


@dataclass(frozen=True)
class Scenario:
    """A named environment with one or more deployed links.

    Attributes
    ----------
    name:
        Scenario identifier (``"classroom"``, ``"office-a"``, …).
    room:
        The environment geometry.
    links:
        Deployed TX-RX links, in case order.
    description:
        One-line description of what the scenario reproduces.
    """

    name: str
    room: Room
    links: tuple[Link, ...]
    description: str = ""

    def link(self, index: int = 0) -> Link:
        """Convenience accessor for one of the scenario's links."""
        return self.links[index]


# --------------------------------------------------------------------------- #
# Section III: classroom characterization
# --------------------------------------------------------------------------- #
def classroom_scenario(*, link_length_m: float = 4.0) -> Scenario:
    """The 6 m x 8 m classroom with a single 4 m link (Section III-A).

    The link is placed across the room centre; a whiteboard wall and a row of
    desks provide the static multipath the paper's measurements exhibit.
    """
    room = Room.rectangular(8.0, 6.0, material="concrete", name="classroom")
    room.add_obstacle(
        Segment(Point(1.0, 5.4), Point(7.0, 5.4)), material="whiteboard", name="whiteboard"
    )
    room.add_obstacle(
        Segment(Point(1.5, 1.2), Point(6.5, 1.2)), material="wood", name="desk-row"
    )
    mid_x = 4.0
    half = link_length_m / 2.0
    tx = Point(mid_x - half, 3.0)
    rx = Point(mid_x + half, 3.0)
    link = Link(room=room, tx=tx, rx=rx, name="classroom-link")
    return Scenario(
        name="classroom",
        room=room,
        links=(link,),
        description="6x8 m classroom, 4 m link, link characterization (Fig. 2-4)",
    )


# --------------------------------------------------------------------------- #
# Section IV-B: link next to a concrete wall (angle study)
# --------------------------------------------------------------------------- #
def corner_link_scenario(*, wall_offset_m: float = 1.0) -> Scenario:
    """A 3 m link deployed close to a concrete wall (Fig. 5 setup).

    The nearby wall creates a strong single-bounce reflection arriving from a
    clearly separated angle, which the MUSIC pseudospectrum must resolve next
    to the LOS peak.
    """
    room = Room.rectangular(8.0, 6.0, material="drywall", name="corner-room")
    # Replace the south wall with concrete (the reflector of interest).
    room.walls[0] = type(room.walls[0])(
        segment=room.walls[0].segment, material="concrete", name="south-concrete"
    )
    tx = Point(2.5, wall_offset_m)
    rx = Point(5.5, wall_offset_m)
    link = Link(room=room, tx=tx, rx=rx, name="corner-link")
    return Scenario(
        name="corner",
        room=room,
        links=(link,),
        description="3 m link near a concrete wall, AoA study (Fig. 5, Fig. 10, Fig. 11)",
    )


# --------------------------------------------------------------------------- #
# Section V: two office rooms, five link cases
# --------------------------------------------------------------------------- #
def office_scenarios() -> tuple[Scenario, Scenario]:
    """The two furnished office rooms hosting the 5 evaluation cases (Fig. 6).

    Room A (13 m x 8 m, an open-plan lab) hosts cases 1-3 and room B
    (11 m x 7 m) hosts cases 4-5.  The cases differ in TX-RX distance (3 m to
    6 m) and in how cluttered their surroundings are; case 3 is the short
    link in a relatively vacant area that the paper singles out as having the
    strongest LOS.  The rooms are large enough that the "students" of the
    background-dynamics workload can keep the paper's 5 m distance from the
    monitored links.
    """
    room_a = Room.rectangular(13.0, 8.0, material="concrete", name="office-a")
    room_a.add_obstacle(
        Segment(Point(0.8, 6.8), Point(5.2, 6.8)), material="wood", name="desk-bank-north"
    )
    room_a.add_obstacle(
        Segment(Point(7.2, 1.0), Point(7.2, 4.5)), material="metal", name="cabinet-east"
    )
    room_a.add_obstacle(
        Segment(Point(1.0, 1.1), Point(4.0, 1.1)), material="wood", name="desk-bank-south"
    )

    room_b = Room.rectangular(11.0, 7.0, material="brick", name="office-b")
    room_b.add_obstacle(
        Segment(Point(6.9, 0.8), Point(6.9, 5.2)), material="glass", name="window-partition"
    )
    room_b.add_obstacle(
        Segment(Point(1.0, 5.9), Point(5.0, 5.9)), material="wood", name="desk-bank"
    )

    # The per-case transmit powers model the paper's "diverse TX-RX distances
    # and AP heights": different deployments see different received-power
    # scales even before anyone enters the room.
    cases_a = (
        Link(room=room_a, tx=Point(1.5, 2.0), rx=Point(6.5, 2.0), name="case-1", tx_power=1.0),
        Link(room=room_a, tx=Point(1.5, 4.5), rx=Point(7.5, 4.5), name="case-2", tx_power=0.3),
        Link(room=room_a, tx=Point(3.0, 3.2), rx=Point(6.0, 3.2), name="case-3", tx_power=2.5),
    )
    cases_b = (
        Link(room=room_b, tx=Point(1.2, 3.0), rx=Point(6.2, 3.0), name="case-4", tx_power=0.55),
        Link(room=room_b, tx=Point(1.5, 1.5), rx=Point(5.5, 4.5), name="case-5", tx_power=1.6),
    )
    scenario_a = Scenario(
        name="office-a",
        room=room_a,
        links=cases_a,
        description="Office room A, evaluation cases 1-3 (Fig. 6)",
    )
    scenario_b = Scenario(
        name="office-b",
        room=room_b,
        links=cases_b,
        description="Office room B, evaluation cases 4-5 (Fig. 6)",
    )
    return scenario_a, scenario_b


def evaluation_cases() -> list[tuple[Scenario, Link]]:
    """The five (scenario, link) evaluation cases in paper order."""
    scenario_a, scenario_b = office_scenarios()
    cases = [(scenario_a, link) for link in scenario_a.links]
    cases.extend((scenario_b, link) for link in scenario_b.links)
    return cases


# --------------------------------------------------------------------------- #
# Human placement grids
# --------------------------------------------------------------------------- #
def human_grid(
    link: Link,
    *,
    rows: int = 3,
    cols: int = 3,
    lateral_extent_m: float = 2.0,
    along_extent_m: float | None = None,
    margin_m: float = 0.3,
) -> list[Point]:
    """The 3x3 grid of human presence locations tested for each case.

    The grid is aligned with the link: columns spread along the TX->RX
    direction, rows spread laterally *to one side* of the LOS path so the
    grid "covers different distances and angles with respect to the
    receiver" as in the paper (the monitored person stands near the link, not
    on top of the devices).  The first row sits just outside the LOS
    sensitivity region, the last row ``lateral_extent_m`` away.  Positions
    falling outside the room (minus *margin_m*) are pulled back inside.

    Parameters
    ----------
    link:
        The link the grid is attached to.
    rows, cols:
        Grid dimensions (3x3 in the paper).
    lateral_extent_m:
        Maximum perpendicular offset from the LOS path.
    along_extent_m:
        Span of the grid along the link; defaults to the link length.
    margin_m:
        Minimum distance kept from the room walls.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"rows and cols must be >= 1, got {rows}x{cols}")
    direction = (link.rx - link.tx).normalized()
    normal = Point(-direction.y, direction.x)
    length = along_extent_m if along_extent_m is not None else link.distance()
    centre = link.midpoint()

    # Fractions along the link (centred) and across it.  Lateral offsets are
    # one-sided: from just off the LOS out to the full lateral extent.
    if cols == 1:
        along_fractions = [0.0]
    else:
        along_fractions = [(-0.5 + c / (cols - 1)) for c in range(cols)]
    if rows == 1:
        lateral_fractions = [0.25]
    else:
        lateral_fractions = [0.25 + 0.75 * r / (rows - 1) for r in range(rows)]

    room = link.room
    grid: list[Point] = []
    for r in lateral_fractions:
        for c in along_fractions:
            point = centre + direction * (c * length) + normal * (r * lateral_extent_m)
            x = min(max(point.x, margin_m), room.width - margin_m)
            y = min(max(point.y, margin_m), room.height - margin_m)
            grid.append(Point(x, y))
    return grid


def grid_distance_to_receiver(link: Link, position: Point) -> float:
    """Distance from a grid position to the receiver (Fig. 9's abscissa)."""
    return position.distance_to(link.rx)


def grid_angle_to_receiver_deg(link: Link, position: Point) -> float:
    """Angle of a grid position as seen from the receiver array (degrees).

    Measured relative to the array broadside (which faces the transmitter),
    matching the abscissa of Fig. 11.
    """
    array = link.array
    assert array is not None
    direction = position - link.rx
    broadside = array.broadside.normalized()
    if direction.norm() < 1e-9:
        return 0.0
    direction = direction.normalized()
    cos_a = max(-1.0, min(1.0, direction.dot(broadside)))
    sign = 1.0 if broadside.cross(direction) >= 0 else -1.0
    return math.degrees(sign * math.acos(cos_a))


def default_human(position: Point) -> HumanBody:
    """The standard human body model used across the evaluation."""
    return HumanBody(position=position)
