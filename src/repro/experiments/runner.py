"""End-to-end experiment driver reproducing the paper's evaluation campaign.

The driver mirrors Section V-A's methodology: for every link case it collects
a calibration profile of the empty environment, then monitoring windows for
each human-grid position (positives) and for the empty room (negatives), all
under background dynamics and slow environmental drift.  Every window is
scored by the three detection schemes; the resulting
:class:`EvaluationResult` feeds the ROC (Fig. 7), per-case (Fig. 8),
per-distance (Fig. 9), per-angle (Fig. 11) and per-window-size (Fig. 12)
figures as well as the headline numbers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro import obs
from repro.api.config import PipelineConfig
from repro.api.registry import DEFAULT_REGISTRY, DetectorRegistry
from repro.backend import use_backend
from repro.channel.channel import ChannelSimulator, Link
from repro.channel.human import HumanBody
from repro.channel.noise import ImpairmentModel
from repro.channel.propagation import PropagationModel
from repro.core.thresholds import RocCurve, detection_rates_at_threshold, roc_curve
from repro.csi.collector import PacketCollector
from repro.csi.trace import CSITrace
from repro.experiments.metrics import bin_labels, rates_by_group
from repro.experiments.scenarios import (
    Scenario,
    evaluation_cases,
    grid_angle_to_receiver_deg,
    grid_distance_to_receiver,
    human_grid,
)
from repro.experiments.workloads import BackgroundDynamics, EnvironmentDrift
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_known_keys

#: Names of the three evaluation schemes, in the paper's order.
SCHEMES: tuple[str, ...] = ("baseline", "subcarrier", "combined")


@dataclass(frozen=True)
class EvaluationConfig:
    """Knobs of the evaluation campaign.

    The defaults reproduce the paper's protocol scaled to simulation: 3x3
    human grids per case, three monitoring bursts per location, 0.5-second
    monitoring windows at 50 packets per second, background students and
    slow environmental drift between windows.

    ``max_workers`` controls how many link cases :func:`run_evaluation` runs
    concurrently (in separate processes).  Each case already derives its own
    seed from ``seed + 1000 * case_index``, so the campaign result is
    bit-identical for every worker count.

    ``backend`` names the numeric backend (:mod:`repro.backend`) every case
    of the campaign computes through: ``"exact"`` (default) keeps the
    byte-identical libm-routed kernels behind the published sha256 pins,
    ``"fast"`` swaps in the SIMD kernels (tolerance parity — identical
    operating points, trailing-bit score deltas).  The name is resolved
    against the backend registry when the campaign runs, so custom backends
    registered via :func:`repro.backend.register_backend` are addressable
    from config files.
    """

    calibration_packets: int = 150
    window_packets: int = 25
    max_workers: int = 1
    windows_per_location: int = 3
    grid_rows: int = 3
    grid_cols: int = 3
    grid_lateral_extent_m: float = 2.4
    grid_along_fraction: float = 0.8
    snr_db: float = 32.0
    max_bounces: int = 2
    packet_rate_hz: float = 50.0
    background_max_people: int = 3
    background_min_distance_m: float = 5.0
    gain_drift_std_db: float = 0.3
    clutter_reflection: float = 0.04
    human_min_attenuation: float = 0.45
    human_reflection: float = 0.5
    use_stability_ratio: bool = True
    use_music_spectrum: bool = False
    theta_min_deg: float = -60.0
    theta_max_deg: float = 60.0
    schemes: tuple[str, ...] = SCHEMES
    backend: str = "exact"
    seed: int = 2015

    def __post_init__(self) -> None:
        if not self.backend or not isinstance(self.backend, str):
            raise ValueError(
                f"backend must be a non-empty string, got {self.backend!r}"
            )
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        # A degenerate campaign (no windows, no grid, an uncalibratable
        # profile) must fail at configuration time — especially now that
        # JSON-driven sweeps construct configs far from the code that runs
        # them — not deep inside scoring with an unrelated error.
        for name, minimum in (
            ("window_packets", 1),
            ("windows_per_location", 1),
            ("grid_rows", 1),
            ("grid_cols", 1),
            ("calibration_packets", 2),
            ("seed", None),
        ):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                # A quoted number in a JSON config ("2015") must fail here
                # with a config error, not as a TypeError mid-campaign.
                raise ValueError(f"{name} must be an integer, got {value!r}")
            if minimum is not None and value < minimum:
                raise ValueError(f"{name} must be >= {minimum}, got {value}")
        if not isinstance(self.packet_rate_hz, (int, float)) or self.packet_rate_hz <= 0:
            raise ValueError(f"packet_rate_hz must be > 0, got {self.packet_rate_hz!r}")
        if isinstance(self.schemes, str):
            raise ValueError(
                f"schemes must be a sequence of scheme names, "
                f"got the string {self.schemes!r}"
            )
        if not self.schemes or not all(
            isinstance(scheme, str) and scheme for scheme in self.schemes
        ):
            raise ValueError(
                f"schemes must be non-empty scheme names, got {self.schemes!r}"
            )

    def impairments(self) -> ImpairmentModel:
        """The per-packet impairment model used by every case."""
        return ImpairmentModel(snr_db=self.snr_db)

    def human_at(self, position) -> HumanBody:
        """The monitored person standing at *position*."""
        return HumanBody(
            position=position,
            min_attenuation=self.human_min_attenuation,
            reflection_coefficient=self.human_reflection,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvaluationConfig":
        """Build a campaign config from a plain mapping, rejecting unknown keys.

        List values for tuple fields (``schemes``) are coerced, so configs can
        round-trip through JSON.
        """
        check_known_keys(
            "EvaluationConfig", data, (f.name for f in dataclasses.fields(cls))
        )
        values = dict(data)
        if "schemes" in values and not isinstance(values["schemes"], tuple):
            if isinstance(values["schemes"], str):
                # tuple("baseline") would silently become a character tuple.
                raise ValueError(
                    f"schemes must be a list of scheme names, "
                    f"got the string {values['schemes']!r}"
                )
            values["schemes"] = tuple(values["schemes"])
        return cls(**values)

    def to_dict(self) -> dict[str, Any]:
        """The campaign config as a plain dict (``from_dict`` inverse)."""
        data = dataclasses.asdict(self)
        data["schemes"] = list(self.schemes)
        return data

    def pipeline_config(self, scheme: str) -> PipelineConfig:
        """The :class:`~repro.api.config.PipelineConfig` for one scheme.

        This is the bridge between the campaign knobs and ``repro.api``: every
        detector of the evaluation is constructed from exactly this config, so
        a campaign detector and a pipeline built from the same settings are
        byte-identical.
        """
        return PipelineConfig(
            detector=scheme,
            use_stability_ratio=self.use_stability_ratio,
            spectrum="music" if self.use_music_spectrum else "bartlett",
            theta_min_deg=self.theta_min_deg,
            theta_max_deg=self.theta_max_deg,
            window_packets=self.window_packets,
            calibration_packets=self.calibration_packets,
            packet_rate_hz=self.packet_rate_hz,
            seed=self.seed,
            backend=self.backend,
        )


@dataclass(frozen=True)
class ScoredWindow:
    """One monitoring window scored by one scheme."""

    scheme: str
    case: str
    occupied: bool
    score: float
    distance_to_rx_m: float | None = None
    angle_deg: float | None = None
    location_index: int | None = None
    window_packets: int = 0

    def to_dict(self) -> dict[str, Any]:
        """The window as a plain JSON-serialisable dict (``from_dict`` inverse)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScoredWindow":
        """Rebuild a window from :meth:`to_dict` output.

        Unknown and missing keys raise the same one-line ``ValueError`` style
        as the config classes.
        """
        fields = dataclasses.fields(cls)
        check_known_keys(
            "ScoredWindow",
            data,
            (f.name for f in fields),
            required=(
                f.name
                for f in fields
                if f.default is dataclasses.MISSING
                and f.default_factory is dataclasses.MISSING
            ),
        )
        return cls(**dict(data))


@dataclass
class EvaluationResult:
    """All scored windows of a campaign plus the derived metrics."""

    windows: list[ScoredWindow]
    config: EvaluationConfig

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """The result as a plain JSON-serialisable dict (``from_dict`` inverse).

        Scores are plain Python floats, so a JSON round-trip reproduces the
        result exactly (``json`` preserves doubles bit-for-bit).
        """
        return {
            "config": self.config.to_dict(),
            "windows": [window.to_dict() for window in self.windows],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvaluationResult":
        """Rebuild a result from :meth:`to_dict` output."""
        check_known_keys(
            "EvaluationResult",
            data,
            ("config", "windows"),
            required=("config", "windows"),
        )
        return cls(
            windows=[ScoredWindow.from_dict(w) for w in data["windows"]],
            config=EvaluationConfig.from_dict(data["config"]),
        )

    # ------------------------------------------------------------------ #
    # score selection
    # ------------------------------------------------------------------ #
    def _select(self, scheme: str, occupied: bool) -> list[ScoredWindow]:
        selected = [
            w for w in self.windows if w.scheme == scheme and w.occupied == occupied
        ]
        if not selected:
            raise ValueError(
                f"no {'occupied' if occupied else 'empty'} windows for scheme {scheme!r}"
            )
        return selected

    def positive_scores(self, scheme: str) -> list[float]:
        """Scores of human-present windows for one scheme."""
        return [w.score for w in self._select(scheme, True)]

    def negative_scores(self, scheme: str) -> list[float]:
        """Scores of empty windows for one scheme."""
        return [w.score for w in self._select(scheme, False)]

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #
    def roc(self, scheme: str) -> RocCurve:
        """ROC curve of one scheme (Fig. 7)."""
        return roc_curve(self.positive_scores(scheme), self.negative_scores(scheme))

    def balanced_operating_point(self, scheme: str) -> tuple[float, float, float]:
        """(threshold, TPR, FPR) at the balanced-accuracy point of a scheme."""
        return self.roc(scheme).balanced_point()

    def rates_at_balanced_threshold(self, scheme: str) -> tuple[float, float]:
        """(TPR, FPR) of a scheme at its own balanced threshold."""
        threshold, _, _ = self.balanced_operating_point(scheme)
        return detection_rates_at_threshold(
            self.positive_scores(scheme), self.negative_scores(scheme), threshold
        )

    def rates_by_case(self, scheme: str, threshold: float | None = None) -> dict[str, float]:
        """Detection rate per link case at a fixed threshold (Fig. 8)."""
        threshold = self._threshold(scheme, threshold)
        windows = self._select(scheme, True)
        return rates_by_group(
            [w.score for w in windows], [w.case for w in windows], threshold
        )

    def rates_by_distance(
        self,
        scheme: str,
        threshold: float | None = None,
        *,
        edges: Sequence[float] = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0),
    ) -> dict[str, float]:
        """Detection rate binned by distance to the receiver (Fig. 9)."""
        threshold = self._threshold(scheme, threshold)
        windows = [w for w in self._select(scheme, True) if w.distance_to_rx_m is not None]
        labels = bin_labels([w.distance_to_rx_m for w in windows], edges)
        return rates_by_group([w.score for w in windows], labels, threshold)

    def rates_by_angle(
        self,
        scheme: str,
        threshold: float | None = None,
        *,
        edges: Sequence[float] = (-90.0, -60.0, -30.0, -10.0, 10.0, 30.0, 60.0, 90.0),
    ) -> dict[str, float]:
        """Detection rate binned by angle from the receiver broadside (Fig. 11)."""
        threshold = self._threshold(scheme, threshold)
        windows = [w for w in self._select(scheme, True) if w.angle_deg is not None]
        labels = bin_labels([w.angle_deg for w in windows], edges)
        return rates_by_group([w.score for w in windows], labels, threshold)

    def headline(self) -> dict[str, dict[str, float]]:
        """Balanced TPR/FPR per scheme — the abstract's 92.0 % / 4.5 % numbers."""
        summary: dict[str, dict[str, float]] = {}
        for scheme in self.config.schemes:
            threshold, tpr, fpr = self.balanced_operating_point(scheme)
            summary[scheme] = {
                "threshold": threshold,
                "true_positive_rate": tpr,
                "false_positive_rate": fpr,
                "auc": self.roc(scheme).auc(),
            }
        return summary

    def _threshold(self, scheme: str, threshold: float | None) -> float:
        if threshold is not None:
            return threshold
        value, _, _ = self.balanced_operating_point(scheme)
        return value


# --------------------------------------------------------------------------- #
# detector construction
# --------------------------------------------------------------------------- #
def build_detectors(
    link: Link,
    config: EvaluationConfig,
    *,
    registry: DetectorRegistry | None = None,
) -> dict[str, object]:
    """Instantiate the requested detection schemes for one link.

    .. deprecated:: 1.1.0
        This is a thin shim over :mod:`repro.api`: every scheme is resolved
        through the :class:`~repro.api.registry.DetectorRegistry` from the
        :meth:`EvaluationConfig.pipeline_config` of that scheme.  New code
        should build detectors from a :class:`~repro.api.config.PipelineConfig`
        directly; this entry point remains for the campaign driver and
        existing callers.

    Custom schemes registered via :func:`repro.api.register_detector` are
    picked up automatically when named in ``config.schemes``.
    """
    registry = registry if registry is not None else DEFAULT_REGISTRY
    unknown = [scheme for scheme in config.schemes if scheme not in registry]
    if unknown:
        raise ValueError(f"unknown schemes requested: {sorted(unknown)}")
    return {
        scheme: registry.create(
            scheme, config=config.pipeline_config(scheme), link=link
        )
        for scheme in config.schemes
    }


# --------------------------------------------------------------------------- #
# per-case campaign
# --------------------------------------------------------------------------- #
def _case_components(
    link: Link, config: EvaluationConfig, seed: int
) -> tuple[ChannelSimulator, PacketCollector, BackgroundDynamics, EnvironmentDrift]:
    """The four per-case components, seeded in the historical draw order.

    The four sequential integer draws off the case RNG are the seeding
    contract both campaign paths share: changing the order (or count) would
    silently re-randomise every published number.
    """
    rng = ensure_rng(seed)
    simulator = ChannelSimulator(
        link,
        propagation=PropagationModel(tx_power=link.tx_power),
        impairments=config.impairments(),
        max_bounces=config.max_bounces,
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    collector = PacketCollector(
        simulator,
        packet_rate_hz=config.packet_rate_hz,
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    background = BackgroundDynamics(
        link,
        max_people=config.background_max_people,
        min_distance_m=config.background_min_distance_m,
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    drift = EnvironmentDrift(
        link,
        gain_drift_std_db=config.gain_drift_std_db,
        clutter_reflection=config.clutter_reflection,
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    return simulator, collector, background, drift


def run_case(
    link: Link,
    config: EvaluationConfig,
    *,
    case_seed: int | None = None,
) -> list[ScoredWindow]:
    """Run the full monitoring campaign for one link case.

    Returns one :class:`ScoredWindow` per (scheme, window).  Positive windows
    cover every grid location ``windows_per_location`` times; the same number
    of empty windows is collected interleaved with the same background
    dynamics and drift.

    The case runs as a whole-case array program
    (:mod:`repro.experiments.case_program`): the window schedule is planned
    up front, every scene is synthesised in one
    :meth:`~repro.channel.channel.ChannelSimulator.clean_cfr_batch` call,
    every packet is impaired through one shared plan
    (:meth:`~repro.csi.collector.PacketCollector.collect_batch`) and every
    window is sanitised once and scored by all schemes from that shared view
    (:func:`~repro.api.monitor.score_windows_shared`).  Scores are
    bit-identical to the retained window-by-window path,
    :func:`run_case_reference`, which the parity suite pins.

    The whole case — synthesis, impairments, sanitisation and scoring —
    computes through ``config.backend``, activated here so process-pool
    workers (which never see the parent's active backend) and library
    callers get the configured kernels without wrapping anything themselves.
    """
    from repro.api.monitor import calibrate_shared, score_windows_shared

    from repro.experiments.case_program import plan_case

    seed = config.seed if case_seed is None else case_seed
    with use_backend(config.backend):
        simulator, collector, background, drift = _case_components(link, config, seed)

        with obs.span("collect.plan"):
            plan = plan_case(link, config, background, drift)
        with obs.span("collect.batch_synthesize"):
            cleans = simulator.clean_cfr_batch(plan.scenes())
        traces = collector.collect_batch(cleans, plan.counts(), labels=plan.labels())

        # Calibration (traces[0]): empty monitored area, no drift gain — drift
        # accumulates *after* calibration.  Gains scale the raw traces before
        # sanitisation, exactly as the historical path applied them.
        monitoring = [
            trace if planned.gain is None else drift.apply_to_trace(trace, planned.gain)
            for trace, planned in zip(traces[1:], plan.monitoring)
        ]
        detectors = build_detectors(link, config)
        calibrate_shared(detectors, traces[0])
        scores = score_windows_shared(detectors, monitoring)

    windows: list[ScoredWindow] = []
    for position, planned in enumerate(plan.monitoring):
        for scheme in detectors:
            windows.append(
                ScoredWindow(
                    scheme=scheme,
                    case=link.name,
                    occupied=planned.occupied,
                    score=scores[scheme][position],
                    distance_to_rx_m=planned.distance_to_rx_m,
                    angle_deg=planned.angle_deg,
                    location_index=planned.location_index,
                    window_packets=planned.num_packets,
                )
            )
    return windows


def run_case_reference(
    link: Link,
    config: EvaluationConfig,
    *,
    case_seed: int | None = None,
) -> list[ScoredWindow]:
    """The historical window-by-window campaign loop for one link case.

    Retained as the bit-parity reference for :func:`run_case`: it collects,
    sanitises and scores one window at a time with per-scheme ``score``
    calls.  The parity suite asserts ``run_case`` reproduces these windows
    float for float; production callers should use :func:`run_case`.

    Like :func:`run_case`, the whole case computes through
    ``config.backend``.
    """
    seed = config.seed if case_seed is None else case_seed
    with use_backend(config.backend):
        simulator, collector, background, drift = _case_components(link, config, seed)

        # Calibration: empty monitored area (background may be present far
        # away), no drift applied — it accumulates *after* calibration.
        calibration = collector.collect(
            background.people_for_window() + drift.clutter_for_window(),
            num_packets=config.calibration_packets,
            label=f"{link.name}/calibration",
        )
        detectors = build_detectors(link, config)
        for detector in detectors.values():
            detector.calibrate(calibration)

        grid = human_grid(
            link,
            rows=config.grid_rows,
            cols=config.grid_cols,
            lateral_extent_m=config.grid_lateral_extent_m,
            along_extent_m=config.grid_along_fraction * link.distance(),
        )

        windows: list[ScoredWindow] = []

        def score_window(
            trace: CSITrace,
            *,
            occupied: bool,
            distance: float | None,
            angle: float | None,
            location_index: int | None,
        ) -> None:
            for scheme, detector in detectors.items():
                windows.append(
                    ScoredWindow(
                        scheme=scheme,
                        case=link.name,
                        occupied=occupied,
                        score=float(detector.score(trace)),
                        distance_to_rx_m=distance,
                        angle_deg=angle,
                        location_index=location_index,
                        window_packets=trace.num_packets,
                    )
                )

        # Positive windows: every grid location, several bursts each.
        for location_index, position in enumerate(grid):
            distance = grid_distance_to_receiver(link, position)
            angle = grid_angle_to_receiver_deg(link, position)
            for _ in range(config.windows_per_location):
                scene = [config.human_at(position)]
                scene += background.people_for_window()
                scene += drift.clutter_for_window()
                trace = collector.collect(
                    scene,
                    num_packets=config.window_packets,
                    label=f"{link.name}/occupied",
                )
                trace = drift.apply_to_trace(trace, drift.gain_for_window())
                score_window(
                    trace,
                    occupied=True,
                    distance=distance,
                    angle=angle,
                    location_index=location_index,
                )

        # Negative windows: the same number, same ambient conditions, nobody
        # in the monitored area.
        num_negative = len(grid) * config.windows_per_location
        for _ in range(num_negative):
            scene = background.people_for_window() + drift.clutter_for_window()
            trace = collector.collect(
                scene, num_packets=config.window_packets, label=f"{link.name}/empty"
            )
            trace = drift.apply_to_trace(trace, drift.gain_for_window())
            score_window(
                trace, occupied=False, distance=None, angle=None, location_index=None
            )

    return windows


# --------------------------------------------------------------------------- #
# full campaign
# --------------------------------------------------------------------------- #
def derive_case_seed(config: EvaluationConfig, case_index: int) -> int:
    """The deterministic per-case seed of a campaign.

    Single source of the derivation: :func:`run_evaluation` and the sweep
    runner (:mod:`repro.sweep.runner`) both shard cases with exactly this
    seed, which is what makes a sweep point bit-identical to a standalone
    campaign of the same config.
    """
    return config.seed + 1000 * case_index


def _run_case_shard(
    link: Link,
    config: EvaluationConfig,
    case_seed: int,
    obs_enabled: bool = False,
) -> tuple[list[ScoredWindow], "obs.ObsSnapshot | None"]:
    """One process-pool work unit of :func:`run_evaluation`.

    Wraps :func:`run_case` in its own :mod:`repro.obs` recorder when
    observability is on (workers don't share the parent's recorder) and
    ships the snapshot home with the windows for in-order merge.
    """
    with obs.shard_recording(obs_enabled) as recorder:
        with obs.span("eval.case"):
            windows = run_case(link, config, case_seed=case_seed)
        snapshot = recorder.snapshot() if recorder is not None else None
    return windows, snapshot


def run_evaluation(
    config: EvaluationConfig | None = None,
    *,
    cases: Sequence[tuple[Scenario, Link]] | None = None,
    parallel: bool | None = None,
    max_workers: int | None = None,
) -> EvaluationResult:
    """Run the campaign over all evaluation cases (the 5 office links).

    Cases are embarrassingly parallel: every case derives its own seed
    (``config.seed + 1000 * case_index``) and shares no mutable state, so the
    campaign can be sharded over a :class:`~concurrent.futures.ProcessPoolExecutor`
    with bit-identical results for any worker count.  Per-case window lists
    are merged back in case order, so the result's window ordering is also
    deterministic.

    Parameters
    ----------
    config:
        Campaign configuration; defaults to :class:`EvaluationConfig`.
    cases:
        Optional subset of (scenario, link) pairs; defaults to the paper's
        five cases from :func:`repro.experiments.scenarios.evaluation_cases`.
    parallel:
        Force sequential (``False``) or process-parallel (``True``) execution;
        ``None`` (default) parallelises exactly when the effective worker
        count exceeds one.  ``True`` always goes through the process pool,
        even with a single worker.
    max_workers:
        Worker-count override; ``None`` uses ``config.max_workers``.

    Notes
    -----
    Worker processes resolve scheme names through their own process-global
    :data:`~repro.api.registry.DEFAULT_REGISTRY`.  Under the ``fork`` start
    method (Linux default) runtime registrations are inherited; on platforms
    whose executors spawn fresh interpreters (``spawn``/``forkserver``),
    custom detectors registered via :func:`repro.api.register_detector` must
    be registered at import time of an importable module, or the workers will
    reject the scheme as unknown.
    """
    config = config if config is not None else EvaluationConfig()
    case_list = list(cases) if cases is not None else evaluation_cases()
    if not case_list:
        raise ValueError("run_evaluation requires at least one case")
    workers = config.max_workers if max_workers is None else max_workers
    if workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {workers}")
    workers = min(workers, len(case_list))
    if parallel is None:
        parallel = workers > 1
    seeds = [derive_case_seed(config, index) for index in range(len(case_list))]

    per_case: list[list[ScoredWindow]]
    with obs.span("eval.campaign"):
        if not parallel:
            per_case = []
            for (_, link), seed in zip(case_list, seeds):
                with obs.span("eval.case"):
                    per_case.append(run_case(link, config, case_seed=seed))
        else:
            from concurrent.futures import ProcessPoolExecutor

            obs_enabled = obs.enabled()
            with ProcessPoolExecutor(max_workers=workers) as executor:
                futures = [
                    executor.submit(
                        _run_case_shard, link, config, seed, obs_enabled
                    )
                    for (_, link), seed in zip(case_list, seeds)
                ]
                # Collect in submission order: the merged window list (and the
                # merged metrics) are identical to the sequential campaign
                # regardless of completion order.
                per_case = []
                for future in futures:
                    case_windows, snapshot = future.result()
                    per_case.append(case_windows)
                    obs.merge(snapshot)

    windows: list[ScoredWindow] = []
    for case_windows in per_case:
        windows.extend(case_windows)
    obs.count("eval.windows", len(windows))
    return EvaluationResult(windows=windows, config=config)
