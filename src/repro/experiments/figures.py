"""One generator per figure of the paper.

Every function returns plain data (dict of NumPy arrays / floats) that a
benchmark or example can print or plot; nothing here draws.  The functions
take a ``seed`` so the series are reproducible, and the expensive
evaluation-campaign figures (Fig. 7–9, 11) accept a pre-computed
:class:`~repro.experiments.runner.EvaluationResult` so the campaign is run
once and shared.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.aoa.errors import angle_error_distribution
from repro.aoa.music import MusicEstimator
from repro.channel.channel import ChannelSimulator
from repro.channel.human import HumanBody
from repro.channel.noise import ImpairmentModel
from repro.core.fitting import fit_log_curve, fit_per_subcarrier
from repro.core.multipath_factor import (
    multipath_factor,
    multipath_factor_batch,
    multipath_factor_trace,
)
from repro.csi.collector import PacketCollector
from repro.csi.rssi import trace_rss_change_db
from repro.experiments.runner import (
    EvaluationConfig,
    EvaluationResult,
    run_case,
    run_evaluation,
)
from repro.experiments.scenarios import (
    classroom_scenario,
    corner_link_scenario,
    evaluation_cases,
)
from repro.experiments.workloads import static_location_set, walking_trajectory
from repro.utils.stats import ecdf


# --------------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------------- #
def _classroom_collector(seed: int, snr_db: float = 32.0) -> tuple[PacketCollector, object]:
    scenario = classroom_scenario()
    link = scenario.link()
    simulator = ChannelSimulator(
        link,
        impairments=ImpairmentModel(snr_db=snr_db),
        max_bounces=2,
        seed=seed,
    )
    return PacketCollector(simulator, seed=seed + 1), link


def _location_measurements(
    *,
    num_locations: int,
    packets_per_location: int,
    seed: int,
) -> dict[str, np.ndarray]:
    """Per-location mean RSS change and multipath factor on antenna 0.

    This is the raw material of Fig. 2a and Fig. 3: the classroom link is
    measured empty, then with a person standing at each sampled location.
    """
    collector, link = _classroom_collector(seed)
    baseline = collector.collect_empty(num_packets=max(50, packets_per_location))
    locations = static_location_set(link, count=num_locations, seed=seed + 2)
    traces = [
        collector.collect(HumanBody(position=position), num_packets=packets_per_location)
        for position in locations
    ]
    rss_change = np.empty((num_locations, baseline.num_subcarriers))
    for i, trace in enumerate(traces):
        rss_change[i] = trace_rss_change_db(trace, baseline).mean(axis=0)[0]
    # One stacked IFFT for every (location, packet, antenna) row; the per-
    # location mean over its own packet block is bit-identical to the
    # historical per-trace computation.
    stacked = np.concatenate([trace.csi for trace in traces], axis=0)
    factors = (
        multipath_factor_batch(stacked)
        .reshape(num_locations, packets_per_location, *traces[0].csi.shape[1:])
        .mean(axis=1)[:, 0]
    )
    return {
        "rss_change_db": rss_change,
        "multipath_factor": factors,
        "distances_to_rx": np.array([p.distance_to(link.rx) for p in locations]),
    }


# --------------------------------------------------------------------------- #
# Fig. 2 — diverse RSS change trends
# --------------------------------------------------------------------------- #
def fig2a_rss_change_cdf(
    *, num_locations: int = 200, packets_per_location: int = 20, seed: int = 2015
) -> dict[str, np.ndarray]:
    """CDF of the per-subcarrier RSS change over many human locations.

    The paper's observation: unlike an ideal LOS link, the change is spread
    over both negative (drop) and positive (rise) values.
    """
    data = _location_measurements(
        num_locations=num_locations, packets_per_location=packets_per_location, seed=seed
    )
    values, cdf = ecdf(data["rss_change_db"].ravel())
    return {
        "rss_change_db": values,
        "cdf": cdf,
        "fraction_rss_rise": float((data["rss_change_db"] > 0).mean()),
    }


def fig2b_walk_rss_change(
    *, num_packets: int = 1000, seed: int = 2015
) -> dict[str, np.ndarray]:
    """Per-subcarrier RSS change while a person walks across the 4 m link.

    Returns the full (packets x subcarriers) matrix plus the two example
    subcarriers the paper highlights (index 15 mostly drops, index 25 both
    rises and drops).
    """
    collector, link = _classroom_collector(seed)
    baseline = collector.collect_empty(num_packets=100)
    positions = walking_trajectory(link, num_packets=num_packets, seed=seed + 3)
    walk = collector.collect_walk(positions)
    change = trace_rss_change_db(walk, baseline)[:, 0, :]
    return {
        "rss_change_db": change,
        "subcarrier_15": change[:, 14],
        "subcarrier_25": change[:, 24],
        "fraction_rise_sc15": float((change[:, 14] > 0.5).mean()),
        "fraction_rise_sc25": float((change[:, 24] > 0.5).mean()),
    }


# --------------------------------------------------------------------------- #
# Fig. 3 — multipath factor vs RSS change
# --------------------------------------------------------------------------- #
def fig3_multipath_factor(
    *,
    num_locations: int = 200,
    packets_per_location: int = 20,
    seed: int = 2015,
    fit_subcarriers: Sequence[int] = (4, 10, 16, 22, 28),
) -> dict[str, object]:
    """Multipath-factor distribution (3a), example fit (3b) and per-subcarrier fits (3c)."""
    data = _location_measurements(
        num_locations=num_locations, packets_per_location=packets_per_location, seed=seed
    )
    mu = data["multipath_factor"]
    delta = data["rss_change_db"]
    factor_values, factor_cdf = ecdf(mu.ravel())
    example = fit_log_curve(mu[:, fit_subcarriers[0]], delta[:, fit_subcarriers[0]])
    fits = {
        k: fit_log_curve(mu[:, k], delta[:, k])
        for k in fit_subcarriers
    }
    all_fits = fit_per_subcarrier(mu, delta)
    decreasing = sum(1 for f in all_fits.values() if f.is_monotone_decreasing())
    return {
        "multipath_factor": factor_values,
        "cdf": factor_cdf,
        "example_subcarrier": fit_subcarriers[0],
        "example_fit": example,
        "fits": fits,
        "fitted_subcarriers": len(all_fits),
        "monotone_decreasing_subcarriers": decreasing,
    }


# --------------------------------------------------------------------------- #
# Fig. 4 — temporal stability of the multipath factor
# --------------------------------------------------------------------------- #
def fig4_temporal_stability(
    *, num_packets: int = 1000, seed: int = 2015
) -> dict[str, object]:
    """Multipath factor and RSS change over many packets at two fixed locations."""
    collector, link = _classroom_collector(seed)
    baseline = collector.collect_empty(num_packets=100)
    direction = (link.rx - link.tx).normalized()
    normal = type(direction)(-direction.y, direction.x)
    locations = {
        "location-a": link.midpoint() + normal * 0.4,
        "location-b": link.tx + direction * (0.7 * link.distance()) + normal * 1.0,
    }
    out: dict[str, object] = {}
    for name, position in locations.items():
        trace = collector.collect(HumanBody(position=position), num_packets=num_packets)
        factors = multipath_factor_trace(trace)[:, 0, :]
        change = trace_rss_change_db(trace, baseline)[:, 0, :]
        argmax_counts = np.bincount(
            np.argmax(factors, axis=1), minlength=factors.shape[1]
        )
        out[name] = {
            "factor_mean": factors.mean(axis=0),
            "factor_std": factors.std(axis=0),
            "rss_change_mean": change.mean(axis=0),
            "rss_change_std": change.std(axis=0),
            "argmax_subcarrier_distribution": argmax_counts / factors.shape[0],
            "distinct_argmax_subcarriers": int((argmax_counts > 0).sum()),
        }
    return out


# --------------------------------------------------------------------------- #
# Fig. 5 — angle of arrival
# --------------------------------------------------------------------------- #
def fig5_aoa(
    *, num_packets: int = 200, num_angle_positions: int = 16, seed: int = 2015
) -> dict[str, object]:
    """MUSIC pseudospectrum of the corner link (5b) and RSS change vs angle (5c)."""
    scenario = corner_link_scenario()
    link = scenario.link()
    simulator = ChannelSimulator(
        link, impairments=ImpairmentModel(snr_db=32.0), max_bounces=1, seed=seed
    )
    collector = PacketCollector(simulator, seed=seed + 1)
    baseline = collector.collect_empty(num_packets=num_packets)
    assert link.array is not None
    music = MusicEstimator(array=link.array, num_sources=2)
    spectrum = music.pseudospectrum(baseline.csi)
    static_paths = simulator.static_paths()
    true_angles = sorted(
        np.degrees(p.aoa_rad) for p in static_paths if abs(np.degrees(p.aoa_rad)) <= 90
    )

    angles = np.linspace(-75.0, 75.0, num_angle_positions)
    rss_change = np.empty((num_angle_positions, baseline.num_subcarriers))
    radius = 1.0
    broadside = link.array.broadside.normalized()
    axis = type(broadside)(-broadside.y, broadside.x)
    for i, angle in enumerate(angles):
        rad = np.radians(angle)
        offset = broadside * (radius * float(np.cos(rad))) + axis * (
            radius * float(np.sin(rad))
        )
        position = link.rx + offset
        x = min(max(position.x, 0.3), link.room.width - 0.3)
        y = min(max(position.y, 0.3), link.room.height - 0.3)
        trace = collector.collect(
            HumanBody(position=type(position)(x, y)), num_packets=30
        )
        rss_change[i] = np.abs(trace_rss_change_db(trace, baseline).mean(axis=0)).mean(axis=0)
    return {
        "pseudospectrum_angles_deg": spectrum.angles_deg,
        "pseudospectrum": spectrum.normalized().values,
        "pseudospectrum_peaks_deg": spectrum.peaks(max_peaks=2),
        "true_path_angles_deg": np.asarray(true_angles),
        "probe_angles_deg": angles,
        "mean_abs_rss_change_db": rss_change.mean(axis=1),
    }


# --------------------------------------------------------------------------- #
# Fig. 7 – 9, 11 — evaluation campaign figures
# --------------------------------------------------------------------------- #
def default_campaign(config: EvaluationConfig | None = None) -> EvaluationResult:
    """Run the full five-case campaign used by Fig. 7, 8, 9 and 11."""
    return run_evaluation(config if config is not None else EvaluationConfig())


def fig7_roc(result: EvaluationResult) -> dict[str, object]:
    """ROC curves of the three schemes plus their balanced operating points."""
    out: dict[str, object] = {}
    for scheme in result.config.schemes:
        curve = result.roc(scheme)
        threshold, tpr, fpr = curve.balanced_point()
        out[scheme] = {
            "false_positive_rates": curve.false_positive_rates,
            "true_positive_rates": curve.true_positive_rates,
            "auc": curve.auc(),
            "balanced_threshold": threshold,
            "balanced_tpr": tpr,
            "balanced_fpr": fpr,
        }
    return out


def fig8_cases(result: EvaluationResult) -> dict[str, dict[str, float]]:
    """Detection rate per link case at each scheme's balanced threshold."""
    return {
        scheme: result.rates_by_case(scheme) for scheme in result.config.schemes
    }


def fig9_range(result: EvaluationResult) -> dict[str, dict[str, float]]:
    """Detection rate vs distance to the receiver at the balanced threshold."""
    return {
        scheme: result.rates_by_distance(scheme) for scheme in result.config.schemes
    }


def fig11_angles(result: EvaluationResult) -> dict[str, dict[str, float]]:
    """Detection rate vs angle from the receiver broadside."""
    return {
        scheme: result.rates_by_angle(scheme) for scheme in result.config.schemes
    }


# --------------------------------------------------------------------------- #
# Fig. 10 — angle estimation errors
# --------------------------------------------------------------------------- #
def fig10_angle_errors(
    *, num_trials: int = 60, packets_per_trial: int = 20, seed: int = 2015
) -> dict[str, object]:
    """CDF of the LOS angle-estimation error, single packet vs packet-averaged."""
    scenario = corner_link_scenario()
    link = scenario.link()
    simulator = ChannelSimulator(
        link, impairments=ImpairmentModel(snr_db=25.0), max_bounces=1, seed=seed
    )
    collector = PacketCollector(simulator, seed=seed + 1)
    assert link.array is not None
    music = MusicEstimator(array=link.array, num_sources=2)
    true_angle = 0.0  # broadside faces the transmitter

    def best_estimate(csi) -> float:
        """Estimated angle closest to the true LOS direction.

        With three antennas and coherent multipath the strongest MUSIC peak
        is not always the LOS; matching the closest estimated peak to the
        ground truth is the standard way to score multi-path AoA estimators.
        """
        candidates = music.estimate_angles(csi, max_paths=2)
        return min(candidates, key=lambda angle: abs(angle - true_angle))

    single_estimates: list[float] = []
    averaged_estimates: list[float] = []
    for _ in range(num_trials):
        trace = collector.collect_empty(num_packets=packets_per_trial)
        single_estimates.append(best_estimate(trace.csi[:1]))
        averaged_estimates.append(best_estimate(trace.csi))
    single_err, single_cdf = angle_error_distribution(single_estimates, true_angle)
    avg_err, avg_cdf = angle_error_distribution(averaged_estimates, true_angle)
    return {
        "single_packet_errors_deg": single_err,
        "single_packet_cdf": single_cdf,
        "averaged_errors_deg": avg_err,
        "averaged_cdf": avg_cdf,
        "median_single_deg": float(np.median(single_err)),
        "median_averaged_deg": float(np.median(avg_err)),
    }


# --------------------------------------------------------------------------- #
# Fig. 12 — impact of the number of packets
# --------------------------------------------------------------------------- #
def fig12_packet_sweep(
    *,
    packet_counts: Sequence[int] = (2, 5, 10, 25, 50, 100),
    seed: int = 2015,
    config: EvaluationConfig | None = None,
) -> dict[str, object]:
    """Detection rate of each scheme as a function of the window size.

    One case (case-1) is evaluated at every requested window size.  The
    default configuration lowers the per-packet SNR so that the benefit of
    averaging over more packets (the saturation the paper observes around
    0.5 s of measurements) is visible rather than being masked by the
    simulator's otherwise clean CSI.
    """
    base = config if config is not None else EvaluationConfig(snr_db=15.0)
    counts = sorted(set(int(c) for c in packet_counts))
    if counts[0] < 2:
        raise ValueError("packet counts below 2 cannot estimate subcarrier stability")
    rates: dict[str, list[float]] = {scheme: [] for scheme in base.schemes}
    false_rates: dict[str, list[float]] = {scheme: [] for scheme in base.schemes}
    _, link = evaluation_cases()[0]
    for count in counts:
        cfg = dataclasses.replace(base, window_packets=count, windows_per_location=2)
        windows = run_case(link, cfg, case_seed=seed)
        for scheme in base.schemes:
            pos = [w.score for w in windows if w.scheme == scheme and w.occupied]
            neg = [w.score for w in windows if w.scheme == scheme and not w.occupied]
            from repro.core.thresholds import roc_curve

            threshold, tpr, fpr = roc_curve(pos, neg).balanced_point()
            rates[scheme].append(tpr)
            false_rates[scheme].append(fpr)
    return {
        "packet_counts": np.asarray(counts),
        "detection_rates": {k: np.asarray(v) for k, v in rates.items()},
        "false_positive_rates": {k: np.asarray(v) for k, v in false_rates.items()},
        "seconds_at_50pps": np.asarray(counts) / 50.0,
    }


# --------------------------------------------------------------------------- #
# headline numbers
# --------------------------------------------------------------------------- #
def headline_numbers(result: EvaluationResult) -> dict[str, dict[str, float]]:
    """The abstract's numbers: balanced TPR / FPR / AUC per scheme."""
    return result.headline()
