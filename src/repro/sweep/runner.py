"""Deterministic sweep execution: shard points x cases over one process pool.

A single evaluation campaign has only five link cases, so sharding at the
campaign level (``run_evaluation(max_workers=...)``) tops out at five busy
workers.  The sweep runner shards one level up *and* one level down at the
same time: the unit of work is a ``(point, case)`` pair, so a 20-point sweep
keeps every worker of a wide pool saturated even though each campaign is
narrow.

Determinism is inherited from the campaign driver rather than re-invented:

* every point's per-case seeds are derived exactly the way
  :func:`~repro.experiments.runner.run_evaluation` derives them
  (``config.seed + 1000 * case_index``), so a sweep point's record is
  bit-identical to running ``run_evaluation(point.config, cases=...)`` on its
  own;
* futures are collected as they complete (so a slow unit early in the grid
  never delays noticing later failures) but results are buffered and merged
  back in ``(point, case)`` submission order, so the store's records — and
  their exact bytes — are identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.channel.channel import Link
from repro.experiments.runner import (
    EvaluationConfig,
    EvaluationResult,
    ScoredWindow,
    derive_case_seed,
    run_case,
)
from repro.experiments.scenarios import Scenario
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.sweep.store import SweepRecord, SweepStore


def _run_point_case(
    link: Link, config: EvaluationConfig, case_seed: int
) -> list[ScoredWindow]:
    """One (point, case) work unit.

    A module-level indirection over :func:`run_case` so both execution paths
    (sequential and process pool) share one seam — the resume tests
    monkeypatch it to count exactly which work units a run executes.
    """
    return run_case(link, config, case_seed=case_seed)


#: What one work unit ships back: the scored windows plus the unit's
#: observability snapshot (``None`` when observability is off).
_UnitResult = tuple[list[ScoredWindow], "obs.ObsSnapshot | None"]


def _timed_point_case(
    link: Link, config: EvaluationConfig, case_seed: int, obs_enabled: bool = False
) -> _UnitResult:
    """Run one work unit under its own :mod:`repro.obs` recorder.

    Calls :func:`_run_point_case` through the module global so the resume
    tests' monkeypatch seam keeps working in both execution paths.  When
    observability is on, the unit's per-case timing lands in a
    ``sweep.case`` span and the snapshot rides home with the windows for
    in-order merge (process-pool workers don't share the parent's recorder).
    """
    with obs.shard_recording(obs_enabled) as recorder:
        with obs.span("sweep.case"):
            windows = _run_point_case(link, config, case_seed)
        snapshot = recorder.snapshot() if recorder is not None else None
    return windows, snapshot


@dataclass(frozen=True)
class SweepRunResult:
    """Outcome of one :meth:`SweepRunner.run` invocation.

    Attributes
    ----------
    records:
        One record per sweep point, in point order — previously completed
        records plus the ones executed by this run.
    executed:
        Point ids computed by this invocation, in execution order.
    skipped:
        Point ids found already complete in the store and not recomputed.
    """

    records: list[SweepRecord]
    executed: tuple[str, ...]
    skipped: tuple[str, ...]


@dataclass
class SweepRunner:
    """Run a :class:`~repro.sweep.spec.SweepSpec` into a :class:`SweepStore`.

    Parameters
    ----------
    spec:
        The sweep to run.
    store:
        Persistent result store; one JSONL record is appended per completed
        point, in point order.
    max_workers:
        Size of the process pool the ``(point, case)`` work units are
        sharded over.  The result (and the store's bytes) is identical for
        any value; 1 runs in-process without a pool.
    progress:
        Optional callback invoked as ``progress(record)`` after each point
        completes.
    """

    spec: SweepSpec
    store: SweepStore
    max_workers: int = 1
    progress: Callable[[SweepRecord], None] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def validate(self, *, resume: bool = False) -> tuple[
        list[SweepPoint], list[SweepRecord], list[tuple[Scenario, Link]]
    ]:
        """Configuration-level checks, separated from execution.

        Expands the spec, resolves the case subset and reconciles the store
        (recovering a torn trailing line when *resume* is set).  Every error
        raised here is a configuration mistake — the CLI maps them to its
        one-line exit-2 contract, while errors raised during :meth:`run`'s
        actual execution keep their tracebacks.

        Returns ``(points, existing_records, cases)``.
        """
        points = self.spec.expand()
        known_ids = {point.point_id for point in points}

        existing: list[SweepRecord] = []
        if resume:
            existing = self.store.recover()
        elif self.store.path.exists() and self.store.path.stat().st_size > 0:
            raise ValueError(
                f"sweep store {self.store.path} already contains records; "
                f"pass resume=True (CLI: --resume) to continue it, or point "
                f"the sweep at a fresh store"
            )
        stale = sorted({r.point_id for r in existing} - known_ids)
        if stale:
            raise ValueError(
                f"sweep store {self.store.path} contains records for points not "
                f"in this spec (e.g. {stale[:3]}); it belongs to a different "
                f"sweep — point this run at a fresh store"
            )
        return points, existing, self.spec.evaluation_cases()

    def run(
        self,
        *,
        resume: bool = False,
        prepared: tuple[
            list[SweepPoint], list[SweepRecord], list[tuple[Scenario, Link]]
        ] | None = None,
    ) -> SweepRunResult:
        """Execute the sweep, appending one store record per completed point.

        Parameters
        ----------
        resume:
            Skip points whose record is already in the store (a torn trailing
            line from a previous interruption is truncated first).  Without
            ``resume``, a non-empty store is an error so two sweeps can never
            silently interleave records in one file.
        prepared:
            The output of an earlier :meth:`validate` call, so a caller that
            already validated (the CLI separates config errors from runtime
            failures) does not expand the spec and reconcile the store twice.
        """
        points, existing, cases = (
            prepared if prepared is not None else self.validate(resume=resume)
        )

        completed = {record.point_id for record in existing}
        pending = [point for point in points if point.point_id not in completed]

        # One (point, case) task per pending unit, in deterministic order;
        # seeds come from the same derivation run_evaluation uses, so each
        # point's record matches a standalone campaign of its config.
        tasks: list[tuple[SweepPoint, Link, int]] = [
            (point, link, derive_case_seed(point.config, case_index))
            for point in pending
            for case_index, (_, link) in enumerate(cases)
        ]

        executed: list[str] = []
        new_records: list[SweepRecord] = []
        obs_enabled = obs.enabled()

        def complete_point(point: SweepPoint, per_case: Sequence[_UnitResult]) -> None:
            windows: list[ScoredWindow] = []
            point_s = 0.0
            # Merge case snapshots in case order, so the combined metrics are
            # structurally identical for any worker count.
            for case_windows, snapshot in per_case:
                windows.extend(case_windows)
                obs.merge(snapshot)
                if snapshot is not None:
                    case_histogram = snapshot.metrics.histograms.get("sweep.case")
                    if case_histogram is not None:
                        point_s += case_histogram.sum
            if obs_enabled:
                obs.observe("sweep.point_s", point_s)
                obs.count("sweep.points", 1)
            result = EvaluationResult(windows=windows, config=point.config)
            record = SweepRecord.from_point(point, result)
            self.store.append(record)
            new_records.append(record)
            executed.append(point.point_id)
            if self.progress is not None:
                self.progress(record)

        workers = min(self.max_workers, len(tasks)) if tasks else 1
        if workers <= 1:
            for i, point in enumerate(pending):
                complete_point(
                    point,
                    [
                        _timed_point_case(link, p.config, seed, obs_enabled)
                        for p, link, seed in tasks[i * len(cases) : (i + 1) * len(cases)]
                    ],
                )
        else:
            from concurrent.futures import (
                CancelledError,
                ProcessPoolExecutor,
                as_completed,
            )

            with ProcessPoolExecutor(max_workers=workers) as executor:
                futures = [
                    executor.submit(
                        _timed_point_case, link, point.config, seed, obs_enabled
                    )
                    for point, link, seed in tasks
                ]
                # Collect as-completed, flush in submission order: results of
                # units that finish out of order are buffered, and a point's
                # record is appended the moment every earlier point has been
                # appended and its own cases are done.  The store's records —
                # and their exact bytes — therefore stay identical to the
                # sequential sweep for any worker count, while a long-tailed
                # unit early in the grid no longer postpones noticing a
                # failure of later units (nor holds every later result alive
                # until its own point flushes — buffers are popped as points
                # complete).
                index_of = {future: i for i, future in enumerate(futures)}
                buffered: dict[int, _UnitResult] = {}
                next_unit = 0

                def flush_ready() -> None:
                    nonlocal next_unit
                    while next_unit < len(tasks):
                        lo, hi = next_unit, next_unit + len(cases)
                        if not all(i in buffered for i in range(lo, hi)):
                            break
                        point = pending[next_unit // len(cases)]
                        per_case = [buffered.pop(i) for i in range(lo, hi)]
                        # Mark the point consumed *before* completing it: if
                        # the store append or a progress callback raises
                        # after the record hit disk, the failure drain below
                        # must not replay the point (a duplicate record
                        # would break the store's byte-parity contract).
                        next_unit = hi
                        complete_point(point, per_case)

                try:
                    for future in as_completed(futures):
                        buffered[index_of[future]] = future.result()
                        flush_ready()
                except BaseException:
                    # Surface the failed unit promptly: cancel everything not
                    # yet started, but drain units already running so every
                    # point that fully finished ahead of the failure is still
                    # persisted (the pool starts units in submission order,
                    # so those form a prefix; the in-order flush guarantees
                    # nothing *after* the failure is ever appended).
                    executor.shutdown(wait=False, cancel_futures=True)
                    for index, future in enumerate(futures):
                        if index in buffered:
                            continue
                        try:
                            buffered[index] = future.result()
                        except (CancelledError, Exception):
                            continue
                    try:
                        flush_ready()
                    except BaseException:
                        # A secondary flush failure (e.g. the same progress
                        # callback raising again) must not mask the original.
                        pass
                    raise

        by_id = {record.point_id: record for record in existing + new_records}
        records = [by_id[point.point_id] for point in points]
        return SweepRunResult(
            records=records,
            executed=tuple(executed),
            skipped=tuple(record.point_id for record in existing),
        )


def run_sweep(
    spec: SweepSpec,
    store: SweepStore | str,
    *,
    max_workers: int = 1,
    resume: bool = False,
    progress: Callable[[SweepRecord], None] | None = None,
) -> SweepRunResult:
    """Convenience wrapper: run *spec* into *store* (path or store object)."""
    if not isinstance(store, SweepStore):
        store = SweepStore(store)
    runner = SweepRunner(
        spec=spec, store=store, max_workers=max_workers, progress=progress
    )
    return runner.run(resume=resume)
