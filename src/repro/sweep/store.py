"""Persistent sweep result store: one JSONL record per completed point.

The store is the durability layer of the sweep subsystem: every completed
:class:`SweepRecord` is appended as one canonical JSON line, so

* a sweep can be interrupted (Ctrl-C, OOM-kill, pre-empted CI runner) and
  resumed — completed points are skipped, a torn trailing line from a
  mid-write kill is detected and dropped;
* two runs of the same spec produce byte-identical files regardless of
  worker count (records are written in point order with canonical JSON);
* cross-config analysis (:mod:`repro.sweep.analysis`) can re-load full
  :class:`~repro.experiments.runner.EvaluationResult` objects — scores are
  stored as JSON doubles, which round-trip floats exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
import json
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.experiments.runner import EvaluationConfig, EvaluationResult
from repro.sweep.spec import SweepPoint, canonical_json
from repro.utils.validation import check_known_keys


@dataclass(frozen=True)
class SweepRecord:
    """The stored outcome of one completed sweep point."""

    point_id: str
    index: int
    overrides: dict[str, Any]
    result: EvaluationResult

    @property
    def config(self) -> EvaluationConfig:
        """The campaign configuration that produced the record."""
        return self.result.config

    @classmethod
    def from_point(cls, point: SweepPoint, result: EvaluationResult) -> "SweepRecord":
        """Pair a sweep point with the result of running its campaign."""
        return cls(
            point_id=point.point_id,
            index=point.index,
            overrides=dict(point.overrides),
            result=result,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepRecord":
        """Rebuild a record from :meth:`to_dict` output, rejecting unknown keys."""
        known = ("point_id", "index", "overrides", "result")
        check_known_keys("SweepRecord", data, known, required=known)
        return cls(
            point_id=data["point_id"],
            index=int(data["index"]),
            overrides=dict(data["overrides"]),
            result=EvaluationResult.from_dict(data["result"]),
        )

    def to_dict(self) -> dict[str, Any]:
        """The record as a plain JSON-serialisable dict (``from_dict`` inverse)."""
        return {
            "point_id": self.point_id,
            "index": self.index,
            "overrides": dict(self.overrides),
            "result": self.result.to_dict(),
        }

    def to_line(self) -> str:
        """The record as its canonical store line (no trailing newline)."""
        return canonical_json(self.to_dict())


class SweepStore:
    """Append-only JSONL store of completed sweep points.

    Parameters
    ----------
    path:
        Store file location; created (with parents) on first append.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        # Parse cache keyed on (mtime_ns, size): repeated queries (len,
        # point_ids, records) re-read the file only when it changed.  Only
        # payloads and the valid-prefix length are kept, not the raw bytes.
        self._cache: tuple[tuple[int, int], list[dict[str, Any]], int] | None = None

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def append(self, record: SweepRecord) -> None:
        """Append one completed point, flushed so a kill loses at most one line."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(record.to_line() + "\n")
            handle.flush()

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def _parse(self) -> tuple[list[dict[str, Any]], int, int]:
        """Raw record dicts, the valid-prefix byte length and the file size.

        A malformed *final* line is treated as a torn write from an
        interrupted run and excluded from the valid prefix; a malformed line
        anywhere else is corruption and raises.  Validation beyond JSON shape
        happens lazily in :meth:`records`, and the parse is cached per
        (mtime, size) so repeated queries do not re-read an unchanged file;
        the raw bytes themselves are not retained.
        """
        if not self.path.exists():
            return [], 0, 0
        stat = self.path.stat()
        key = (stat.st_mtime_ns, stat.st_size)
        if self._cache is not None and self._cache[0] == key:
            return self._cache[1], self._cache[2], key[1]
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        last_content = max(
            (i for i, line in enumerate(lines) if line.strip()), default=-1
        )
        payloads: list[dict[str, Any]] = []
        valid = 0
        offset = 0
        for i, line in enumerate(lines):
            stripped = line.strip()
            if stripped:
                torn = i == last_content and not raw.endswith(b"\n")
                try:
                    payload = json.loads(stripped)
                    if not isinstance(payload, dict) or "point_id" not in payload:
                        raise ValueError("not a sweep record object")
                except (ValueError, KeyError, TypeError) as error:
                    if torn:
                        break  # torn trailing line from an interrupted run
                    raise ValueError(
                        f"corrupt sweep store {self.path}: "
                        f"unreadable record at byte {offset}: {error}"
                    ) from error
                payloads.append(payload)
                valid = min(offset + len(line) + 1, len(raw))
            offset += len(line) + 1
        self._cache = (key, payloads, valid)
        return payloads, valid, len(raw)

    def _build(self, payloads: list[dict[str, Any]]) -> list[SweepRecord]:
        try:
            return [SweepRecord.from_dict(payload) for payload in payloads]
        except (ValueError, KeyError, TypeError) as error:
            raise ValueError(f"corrupt sweep store {self.path}: {error}") from error

    def records(self) -> list[SweepRecord]:
        """All complete records, in file order (a torn final line is ignored)."""
        payloads, _, _ = self._parse()
        return self._build(payloads)

    def recover(self) -> list[SweepRecord]:
        """Like :meth:`records`, but also repairs a torn trailing write.

        Called by the runner on ``--resume``: an unreadable partial line is
        truncated away, and a final record whose trailing newline was lost by
        a mid-write kill gets its newline restored — so re-appended records
        never glue onto a previous line.
        """
        payloads, valid, size = self._parse()
        if size:
            if valid < size:
                with self.path.open("r+b") as handle:
                    handle.truncate(valid)
            else:
                with self.path.open("r+b") as handle:
                    handle.seek(-1, 2)
                    if handle.read(1) != b"\n":
                        handle.write(b"\n")
        return self._build(payloads)

    def point_ids(self) -> list[str]:
        """Point ids of all complete records, in file order.

        Reads the cached JSON parse without constructing record objects (the
        per-window dataclasses are the expensive part), so status-style
        queries stay cheap and repeated calls don't re-read the file.
        """
        payloads, _, _ = self._parse()
        return [payload["point_id"] for payload in payloads]

    def completed_ids(self) -> set[str]:
        """Point ids that already have a complete record."""
        return set(self.point_ids())

    def __len__(self) -> int:
        payloads, _, _ = self._parse()
        return len(payloads)

    def __iter__(self) -> Iterator[SweepRecord]:
        return iter(self.records())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepStore({str(self.path)!r})"
