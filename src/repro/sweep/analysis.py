"""Cross-config aggregation over sweep records.

Once a sweep store holds one :class:`~repro.sweep.store.SweepRecord` per
point, the evaluation questions of Section V become pivots: "how does the
balanced TPR move with the monitoring window size?" is a pivot of the
headline metric over the ``window_packets`` axis, averaging the ``seed``
replication axis away; "where does each scheme operate?" is the table of
balanced ROC operating points per point.  Everything here works on plain
record lists, so it applies equally to a just-finished
:class:`~repro.sweep.runner.SweepRunResult` and to a store re-loaded from
disk long after the sweep ran.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.sweep.spec import canonical_json
from repro.sweep.store import SweepRecord

#: Headline metrics available to :func:`pivot` (per scheme, per point).
HEADLINE_METRICS: tuple[str, ...] = (
    "threshold",
    "true_positive_rate",
    "false_positive_rate",
    "auc",
)


def _axis_key(value: Any) -> str:
    """A stable string key for one axis value (JSON for compound values)."""
    if isinstance(value, str):
        return value
    return canonical_json(value)


def _headline_entry(record: SweepRecord, scheme: str) -> dict[str, float]:
    headline = record.result.headline()
    if scheme not in headline:
        raise ValueError(
            f"scheme {scheme!r} not in record {record.point_id!r}; "
            f"available schemes: {sorted(headline)}"
        )
    return headline[scheme]


def headline_table(records: Sequence[SweepRecord]) -> list[dict[str, Any]]:
    """One row per (point, scheme): overrides plus the headline numbers.

    The flat table is the raw material for any external analysis tool; rows
    keep point order, schemes keep the config's scheme order.
    """
    rows: list[dict[str, Any]] = []
    for record in records:
        for scheme, numbers in record.result.headline().items():
            rows.append(
                {
                    "point_id": record.point_id,
                    "scheme": scheme,
                    **dict(record.overrides),
                    **numbers,
                }
            )
    return rows


def pivot(
    records: Sequence[SweepRecord],
    axis: str,
    *,
    metric: str = "true_positive_rate",
    scheme: str = "combined",
) -> dict[str, dict[str, Any]]:
    """Pivot one headline metric across an axis, averaging the other axes.

    Parameters
    ----------
    records:
        Completed sweep records (a loaded store, or a run result).
    axis:
        Axis field to group by; must be an override of every record.
    metric:
        One of :data:`HEADLINE_METRICS`.
    scheme:
        Detection scheme whose headline numbers are pivoted.

    Returns
    -------
    dict
        Axis value (as a stable string key) -> ``{"value", "mean", "n",
        "points"}``, in first-appearance (expansion) order.  ``points`` maps
        each contributing point id to its own metric value, so the spread
        behind every mean stays visible.
    """
    if metric not in HEADLINE_METRICS:
        raise ValueError(
            f"unknown metric {metric!r}; available metrics: {list(HEADLINE_METRICS)}"
        )
    if not records:
        raise ValueError("pivot requires at least one record")
    groups: dict[str, dict[str, Any]] = {}
    for record in records:
        if axis not in record.overrides:
            raise ValueError(
                f"axis {axis!r} is not an override of point {record.point_id!r}; "
                f"axes: {sorted(record.overrides)}"
            )
        value = record.overrides[axis]
        key = _axis_key(value)
        entry = groups.setdefault(
            key, {"value": value, "mean": 0.0, "n": 0, "points": {}}
        )
        entry["points"][record.point_id] = _headline_entry(record, scheme)[metric]
    for entry in groups.values():
        values = list(entry["points"].values())
        entry["n"] = len(values)
        entry["mean"] = sum(values) / len(values)
    return groups


def operating_points(
    records: Sequence[SweepRecord], *, scheme: str = "combined"
) -> list[dict[str, Any]]:
    """Balanced ROC operating point of one scheme for every sweep point.

    Each row carries the point's overrides, so downstream plots can slice the
    (FPR, TPR) cloud along any axis.
    """
    rows: list[dict[str, Any]] = []
    for record in records:
        numbers = _headline_entry(record, scheme)
        rows.append(
            {
                "point_id": record.point_id,
                "overrides": dict(record.overrides),
                **numbers,
            }
        )
    return rows


def best_point(
    records: Sequence[SweepRecord],
    *,
    metric: str = "auc",
    scheme: str = "combined",
    maximize: bool = True,
) -> dict[str, Any]:
    """The sweep point optimising one headline metric for one scheme."""
    if metric not in HEADLINE_METRICS:
        raise ValueError(
            f"unknown metric {metric!r}; available metrics: {list(HEADLINE_METRICS)}"
        )
    if not records:
        raise ValueError("best_point requires at least one record")
    scored = [
        (record, _headline_entry(record, scheme)[metric]) for record in records
    ]
    record, value = (max if maximize else min)(scored, key=lambda item: item[1])
    return {
        "point_id": record.point_id,
        "overrides": dict(record.overrides),
        "metric": metric,
        "scheme": scheme,
        "value": value,
    }
