"""Declarative parameter-sweep specifications.

A :class:`SweepSpec` names the grid of evaluation campaigns the paper's
Section V figures are built from — ROC, per-case, per-distance, per-angle and
per-window-size curves are all "run the same campaign under a different
knob".  The spec is a base :class:`~repro.experiments.runner.EvaluationConfig`
plus named :class:`SweepAxis` entries over its fields (including ``seed``,
which makes replication a regular axis); like ``PipelineConfig`` it
round-trips through dict/JSON, so one spec file describes one sweep
everywhere (CLI, library, CI).

:meth:`SweepSpec.expand` materialises the cross-product into deterministic
:class:`SweepPoint` objects: stable, content-addressed point ids and one
fully-validated ``EvaluationConfig`` per point.  Expansion order is row-major
over the axes (later axes vary fastest) and never depends on how the sweep is
executed, which is what makes sweep results resumable and bit-reproducible.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.channel.channel import Link
from repro.experiments.runner import EvaluationConfig
from repro.experiments.scenarios import Scenario, evaluation_cases
from repro.utils.validation import check_known_keys

#: ``EvaluationConfig`` fields a sweep axis may range over.  ``max_workers``
#: is excluded: it is an execution knob that never changes results (the point
#: digest strips it for the same reason), so sweeping it would recompute
#: identical campaigns and present them as a study.
SWEEPABLE_FIELDS: tuple[str, ...] = tuple(
    f.name
    for f in dataclasses.fields(EvaluationConfig)
    if f.name != "max_workers"
)


def canonical_json(data: Any) -> str:
    """Canonical JSON encoding (sorted keys, no whitespace).

    Used both for point-id digests and for :class:`~repro.sweep.store.SweepStore`
    lines, so identical payloads are identical bytes regardless of dict
    insertion order or worker count.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _jsonable(value: Any) -> Any:
    """Convert tuples to lists so axis values serialise like config fields."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    return value


@dataclass(frozen=True)
class SweepAxis:
    """One named axis of a sweep: an ``EvaluationConfig`` field and its values.

    Parameters
    ----------
    field:
        Name of the ``EvaluationConfig`` field the axis ranges over (``seed``
        is an ordinary field, so replication seeds are just another axis).
    values:
        The values the field takes, in sweep order.  List values (e.g. for
        ``schemes``) are kept as given and coerced by
        ``EvaluationConfig.from_dict`` at expansion time.
    """

    field: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if self.field not in SWEEPABLE_FIELDS:
            raise ValueError(
                f"unknown sweep axis field {self.field!r}; "
                f"sweepable fields: {sorted(SWEEPABLE_FIELDS)}"
            )
        if isinstance(self.values, (str, bytes)):
            # tuple("2015") would silently become ('2','0','1','5').
            raise ValueError(
                f"axis {self.field!r} values must be a list of values, "
                f"got the string {self.values!r}"
            )
        try:
            values = tuple(self.values)
        except TypeError:
            raise ValueError(
                f"axis {self.field!r} values must be a list of values, "
                f"got {type(self.values).__name__}"
            ) from None
        if not values:
            raise ValueError(f"axis {self.field!r} requires at least one value")
        object.__setattr__(self, "values", values)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepAxis":
        """Build an axis from a plain mapping, rejecting unknown keys."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a sweep axis must be a mapping with 'field' and 'values' "
                f"keys, got {type(data).__name__}"
            )
        check_known_keys(
            "SweepAxis", data, ("field", "values"), required=("field", "values")
        )
        # Raw values go straight through: __post_init__ owns the coercion and
        # rejects strings/scalars before tuple() could mangle them.
        return cls(field=data["field"], values=data["values"])

    def to_dict(self) -> dict[str, Any]:
        """The axis as a plain JSON-serialisable dict (``from_dict`` inverse)."""
        return {"field": self.field, "values": [_jsonable(v) for v in self.values]}


@dataclass(frozen=True)
class SweepPoint:
    """One materialised point of a sweep.

    Attributes
    ----------
    index:
        Position of the point in row-major expansion order.
    point_id:
        Stable identifier ``"<index>-<digest>"``; the digest is a SHA-1 prefix
        of the point's full canonical config *and* the spec's case subset, so
        a resumed sweep only reuses a stored record when both the
        configuration and the cases that produced it are unchanged.
    overrides:
        The axis assignments of this point (field name -> value).
    config:
        The fully-validated campaign configuration of the point.
    """

    index: int
    point_id: str
    overrides: dict[str, Any]
    config: EvaluationConfig


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter sweep over evaluation campaigns.

    Parameters
    ----------
    axes:
        Named axes; the sweep is their cross-product, with later axes varying
        fastest.
    base:
        Campaign configuration every point starts from.
    name:
        Human-readable sweep identifier (recorded in the store).
    cases:
        Optional subset of evaluation case names (``"case-1"`` … ``"case-5"``)
        every point runs over; ``None`` runs the paper's five cases.
    backend:
        Optional numeric backend (:mod:`repro.backend`) forced onto every
        point; ``None`` (default) keeps the base config's backend.  A
        ``backend`` sweep axis still wins over this field, so "same grid
        under both backends" is just another axis.  This is what the CLI's
        ``sweep run --backend`` flag sets.
    """

    axes: tuple[SweepAxis, ...]
    base: EvaluationConfig = field(default_factory=EvaluationConfig)
    name: str = "sweep"
    cases: tuple[str, ...] | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        if isinstance(self.axes, (str, bytes)):
            raise ValueError(
                f"axes must be a list of sweep axes, got the string {self.axes!r}"
            )
        try:
            axes = tuple(
                axis if isinstance(axis, SweepAxis) else SweepAxis.from_dict(axis)
                for axis in self.axes
            )
        except TypeError:
            raise ValueError(
                f"axes must be a list of sweep axes, got {type(self.axes).__name__}"
            ) from None
        if not axes:
            raise ValueError("a SweepSpec requires at least one axis")
        fields = [axis.field for axis in axes]
        duplicates = sorted({f for f in fields if fields.count(f) > 1})
        if duplicates:
            raise ValueError(f"duplicate sweep axes: {duplicates}")
        if not self.name:
            raise ValueError("sweep name must be a non-empty string")
        object.__setattr__(self, "axes", axes)
        if isinstance(self.base, Mapping):
            object.__setattr__(self, "base", EvaluationConfig.from_dict(self.base))
        elif not isinstance(self.base, EvaluationConfig):
            raise ValueError(
                f"base must be an EvaluationConfig or a mapping of its fields, "
                f"got {type(self.base).__name__}"
            )
        if self.cases is not None:
            if isinstance(self.cases, (str, bytes)):
                raise ValueError(
                    f"cases must be a list of case names, got the string {self.cases!r}"
                )
            try:
                cases = tuple(self.cases)
            except TypeError:
                raise ValueError(
                    f"cases must be a list of case names, got {type(self.cases).__name__}"
                ) from None
            if not cases:
                raise ValueError("cases must be None or a non-empty sequence of names")
            object.__setattr__(self, "cases", cases)
        if self.backend is not None and (
            not self.backend or not isinstance(self.backend, str)
        ):
            raise ValueError(
                f"backend must be None or a non-empty string, got {self.backend!r}"
            )

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Build a spec from a plain mapping, rejecting unknown keys."""
        check_known_keys("SweepSpec", data, ("axes", "base", "name", "cases", "backend"))
        if "axes" not in data:
            raise ValueError("a SweepSpec requires at least one axis")
        # Raw payloads go straight through: __post_init__ owns coercion and
        # turns every type mistake into a one-line ValueError.
        return cls(
            axes=data["axes"],
            base=data.get("base", {}),
            name=data.get("name", "sweep"),
            cases=data.get("cases"),
            backend=data.get("backend"),
        )

    def to_dict(self) -> dict[str, Any]:
        """The spec as a plain JSON-serialisable dict (``from_dict`` inverse)."""
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
            "cases": list(self.cases) if self.cases is not None else None,
            "backend": self.backend,
        }

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse a spec from a JSON object string."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"expected a JSON object, got {type(data).__name__}")
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str | Path) -> "SweepSpec":
        """Load a spec from a JSON file."""
        return cls.from_json(Path(path).read_text())

    def to_json(self, *, indent: int | None = 2) -> str:
        """The spec as a JSON object string."""
        return json.dumps(self.to_dict(), indent=indent)

    # ------------------------------------------------------------------ #
    # expansion
    # ------------------------------------------------------------------ #
    @property
    def num_points(self) -> int:
        """Number of points in the cross-product."""
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def expand(self) -> list[SweepPoint]:
        """Materialise the cross-product into deterministic sweep points.

        Points are ordered row-major over the axes (the last axis varies
        fastest); ids and configs depend only on the spec content, never on
        how (or how parallel) the sweep is executed.
        """
        base = self.base.to_dict()
        points: list[SweepPoint] = []
        for index, combo in enumerate(
            itertools.product(*(axis.values for axis in self.axes))
        ):
            overrides = {
                axis.field: _jsonable(value)
                for axis, value in zip(self.axes, combo)
            }
            # max_workers is dropped before the point config is built:
            # parallelism belongs to the SweepRunner, results are
            # bit-identical for any worker count, and normalising here keeps
            # both the point ids and the stored record bytes invariant under
            # pure worker-count edits of the base config.
            merged = {**base, **overrides}
            merged.pop("max_workers", None)
            # A spec-level backend (e.g. from sweep run --backend) applies to
            # every point; an explicit backend axis still varies per point.
            if self.backend is not None and "backend" not in overrides:
                merged["backend"] = self.backend
            config = EvaluationConfig.from_dict(merged)
            # The digest covers everything that shapes the point's result:
            # its config and the case subset it runs over.
            digest = hashlib.sha1(
                canonical_json(
                    {
                        "config": config.to_dict(),
                        "cases": list(self.cases) if self.cases is not None else None,
                    }
                ).encode()
            ).hexdigest()[:8]
            points.append(
                SweepPoint(
                    index=index,
                    point_id=f"{index:03d}-{digest}",
                    overrides=overrides,
                    config=config,
                )
            )
        return points

    # ------------------------------------------------------------------ #
    # evaluation cases
    # ------------------------------------------------------------------ #
    def evaluation_cases(self) -> list[tuple[Scenario, Link]]:
        """The (scenario, link) cases every point runs, in paper order.

        With :attr:`cases` set, the subset keeps the paper's case order (not
        the spec's listing order) so per-case seed derivation is stable.
        """
        all_cases = evaluation_cases()
        if self.cases is None:
            return all_cases
        known = [link.name for _, link in all_cases]
        unknown = sorted(set(self.cases) - set(known))
        if unknown:
            raise ValueError(
                f"unknown evaluation cases: {unknown}; known cases: {known}"
            )
        wanted = set(self.cases)
        return [(scenario, link) for scenario, link in all_cases if link.name in wanted]
