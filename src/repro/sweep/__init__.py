"""repro.sweep — deterministic parameter-sweep orchestration.

The evaluation of the paper is a *grid* of campaigns (seeds x configs x
knobs); this subsystem runs that grid as one deterministic, resumable,
hardware-saturating job:

* :mod:`repro.sweep.spec` — declarative :class:`SweepSpec` (named
  :class:`SweepAxis` entries over ``EvaluationConfig`` fields, dict/JSON
  round-trip) expanded into stable :class:`SweepPoint` objects.
* :mod:`repro.sweep.runner` — :class:`SweepRunner` shards ``point x case``
  work units over one process pool with in-order merge, so results are
  bit-identical for any worker count and each point matches a standalone
  ``run_evaluation`` of its config.
* :mod:`repro.sweep.store` — :class:`SweepStore`, an append-only JSONL store
  (one :class:`SweepRecord` per completed point) that makes sweeps resumable
  and queryable after the fact.
* :mod:`repro.sweep.analysis` — pivots of headline numbers and ROC operating
  points across any axis.

Quickstart::

    from repro.sweep import SweepAxis, SweepSpec, run_sweep
    from repro.sweep.analysis import pivot

    spec = SweepSpec(
        name="window-size",
        axes=(
            SweepAxis("seed", (2015, 2016, 2017)),
            SweepAxis("window_packets", (10, 25, 50)),
        ),
    )
    outcome = run_sweep(spec, "sweep.jsonl", max_workers=8)
    print(pivot(outcome.records, "window_packets", metric="true_positive_rate"))
"""

from repro.sweep.analysis import (
    HEADLINE_METRICS,
    best_point,
    headline_table,
    operating_points,
    pivot,
)
from repro.sweep.runner import SweepRunner, SweepRunResult, run_sweep
from repro.sweep.spec import SWEEPABLE_FIELDS, SweepAxis, SweepPoint, SweepSpec
from repro.sweep.store import SweepRecord, SweepStore

__all__ = [
    "HEADLINE_METRICS",
    "SWEEPABLE_FIELDS",
    "SweepAxis",
    "SweepPoint",
    "SweepRecord",
    "SweepRunResult",
    "SweepRunner",
    "SweepSpec",
    "SweepStore",
    "best_point",
    "headline_table",
    "operating_points",
    "pivot",
    "run_sweep",
]
